type ('a, 'b) t = {
  mutable buckets : ('a * 'b) list array;
  mutable size : int;
}

let create n = { buckets = Array.make (max 8 n) []; size = 0 }

(* The polymorphic hash visits a bounded prefix of the key, and physically
   equal keys hash equally — all an identity-keyed table needs. Keys must
   not contain functional values. *)
let slot t k = (Hashtbl.hash k land max_int) mod Array.length t.buckets

let find_opt t k =
  let rec go = function
    | [] -> None
    | (k', v) :: rest -> if k' == k then Some v else go rest
  in
  go t.buckets.(slot t k)

let mem t k = find_opt t k <> None

let length t = t.size

let resize t =
  let old = t.buckets in
  t.buckets <- Array.make (2 * Array.length old) [];
  Array.iter
    (List.iter (fun ((k, _) as pair) ->
         let s = slot t k in
         t.buckets.(s) <- pair :: t.buckets.(s)))
    old

let replace t k v =
  let s = slot t k in
  let l = t.buckets.(s) in
  if List.exists (fun (k', _) -> k' == k) l then
    t.buckets.(s) <- (k, v) :: List.filter (fun (k', _) -> k' != k) l
  else begin
    t.buckets.(s) <- (k, v) :: l;
    t.size <- t.size + 1;
    if t.size > 2 * Array.length t.buckets then resize t
  end

let reset t =
  Array.fill t.buckets 0 (Array.length t.buckets) [];
  t.size <- 0
