open Pag_core
open Pag_util
open Ast
open Ag_dsl

type mode = [ `Base | `Threaded ]

(* ------------------------------------------------------------------ *)
(* Mode compilation: turn production specs into Grammar productions.   *)
(* ------------------------------------------------------------------ *)

(* Nonterminals the label-counter chain threads through in `Threaded mode:
   everything that can contain a label-consuming construct. *)
let threaded_nts =
  [
    "block"; "decls"; "decl"; "rlabel"; "newlab"; "stmts"; "stmt"; "cases";
    "case1"; "optelse"; "args"; "wargs"; "expr"; "lvalue";
  ]

let is_threaded nt = List.mem nt threaded_nts

let compile_spec mode sp =
  let open Grammar in
  let base_rules =
    List.map
      (function
        | R (t, deps, fn) -> rule t ~deps fn
        | RL (t, deps, fn) -> (
            match mode with
            | `Base ->
                rule t ~deps (fun args ->
                    let labels =
                      Array.init sp.sp_labels (fun _ -> Uid.fresh ())
                    in
                    fn ~labels args)
            | `Threaded ->
                rule t
                  ~deps:(lhs "lab_in" :: deps)
                  (fun args ->
                    let base = as_int ~ctx:"lab_in" args.(0) in
                    let labels = Array.init sp.sp_labels (fun i -> base + i) in
                    fn ~labels (Array.sub args 1 (Array.length args - 1)))))
      sp.sp_rules
  in
  let thread_rules =
    if mode <> `Threaded || not (is_threaded sp.sp_lhs) then []
    else begin
      (* chain the counter: this production's own labels first, then each
         threaded child left to right *)
      let children =
        List.mapi (fun i s -> (i + 1, s)) sp.sp_rhs
        |> List.filter (fun (_, s) -> is_threaded s)
      in
      let k = sp.sp_labels in
      match children with
      | [] ->
          [
            rule (lhs "lab_out") ~deps:[ lhs "lab_in" ] (fun a ->
                v_int (as_int ~ctx:"lab" a.(0) + k));
          ]
      | (p1, _) :: rest ->
          let first =
            rule (rhs p1 "lab_in") ~deps:[ lhs "lab_in" ] (fun a ->
                v_int (as_int ~ctx:"lab" a.(0) + k))
          in
          let rec chain prev = function
            | [] -> [ rule (lhs "lab_out") ~deps:[ rhs prev "lab_out" ] id ]
            | (p, _) :: rest ->
                rule (rhs p "lab_in") ~deps:[ rhs prev "lab_out" ] id
                :: chain p rest
          in
          first :: chain p1 rest
    end
  in
  production ~name:sp.sp_name ~lhs:sp.sp_lhs ~rhs:sp.sp_rhs
    (base_rules @ thread_rules)

(* ------------------------------------------------------------------ *)
(* Scope rules shared by block                                         *)
(* ------------------------------------------------------------------ *)

let scope_of args =
  (* args: env, level, params, fname, retty, dlist *)
  let ctx = "scope" in
  let env = Value.as_tab ~ctx args.(0) in
  let level = as_int ~ctx args.(1) in
  let params = plist_of_value ~ctx args.(2) in
  let fname = as_str ~ctx args.(3) in
  let retty = Pvalue.ret_ty_of_value ~ctx args.(4) in
  let rawdecls = rawdecls_of_value ~ctx args.(5) in
  Cg.build_scope ~env ~level ~params ~fname ~retty ~rawdecls

let scope_deps =
  let open Grammar in
  [ lhs "env"; lhs "level"; lhs "params"; lhs "fname"; lhs "retty"; rhs 1 "dlist" ]

(* ------------------------------------------------------------------ *)
(* Structural production specifications                                *)
(* ------------------------------------------------------------------ *)

let aty = Pvalue.as_ty

let structural_specs : prod_spec list =
  let open Grammar in
  [
    (* ---------------- program ---------------- *)
    prod "program" "program" [ "ID"; "block" ]
      ([
         r (rhs 2 "env") [] (fun _ -> Value.Tab Symtab.empty);
         r (rhs 2 "level") [] (fun _ -> v_int 1);
         r (rhs 2 "entry") [] (fun _ -> v_str "_main");
         r (rhs 2 "params") [] (fun _ -> v_list []);
         r (rhs 2 "retty") [] (fun _ -> Value.Unit);
         r (rhs 2 "fname") [] (fun _ -> v_str "");
         r (lhs "code")
           [ rhs 2 "code" ]
           (fun args ->
             let open Vax.Isa in
             code
               (Cg.( ^^ )
                  (Cg.asm [ Pushl (Imm 0); Calls (1, "_main"); Halt ])
                  (as_code ~ctx:"program" args.(0))));
         r (lhs "errs") [ rhs 2 "errs" ] id;
       ]
      (* in `Threaded mode, seed_chain adds block.lab_in = 0 here *)
      );
    (* ---------------- block ---------------- *)
    prod "block" "block" [ "decls"; "stmts" ]
      [
        r (rhs 1 "env") scope_deps (fun args -> Value.Tab (scope_of args).Cg.sc_env);
        r (rhs 1 "level") [ lhs "level" ] id;
        r (rhs 2 "env") scope_deps (fun args -> Value.Tab (scope_of args).Cg.sc_env);
        r (rhs 2 "level") [ lhs "level" ] id;
        r (lhs "code")
          (scope_deps @ [ lhs "entry"; rhs 2 "code"; rhs 1 "code" ])
          (fun args ->
            let sc = scope_of args in
            let entry = as_str ~ctx:"block" args.(6) in
            let body = as_code ~ctx:"block" args.(7) in
            let nested = as_code ~ctx:"block" args.(8) in
            code
              (Cg.( ^^ )
                 (Cg.routine_section ~entry ~frame_bytes:sc.Cg.sc_frame_bytes
                    ~param_copies:sc.Cg.sc_param_copies
                    ~result_offset:sc.Cg.sc_result_offset ~body)
                 nested));
        r (lhs "errs")
          (scope_deps @ [ rhs 1 "errs"; rhs 2 "errs" ])
          (fun args ->
            let sc = scope_of args in
            cat_errs [ errs_v sc.Cg.sc_errs; args.(6); args.(7) ]);
      ];
    (* ---------------- declaration lists ---------------- *)
    prod "decls_nil" "decls" []
      [
        r (lhs "dlist") [] (fun _ -> v_list []);
        r (lhs "code") [] (fun _ -> code Cg.empty);
        r (lhs "errs") [] (fun _ -> v_list []);
      ];
    prod "decls_cons" "decls" [ "decls"; "decl" ]
      (down [ 1; 2 ]
      @ [
          r (lhs "dlist")
            [ rhs 1 "dlist"; rhs 2 "dlist" ]
            (fun args ->
              v_list (as_list ~ctx:"dlist" args.(0) @ as_list ~ctx:"dlist" args.(1)));
          r (lhs "code")
            [ rhs 1 "code"; rhs 2 "code" ]
            (fun args ->
              code
                (Cg.( ^^ )
                   (as_code ~ctx:"decls" args.(0))
                   (as_code ~ctx:"decls" args.(1))));
          errs_up [ 1; 2 ];
        ]);
    (* ---------------- declarations ---------------- *)
    prod "decl_const" "decl" [ "ID"; "NUMT" ]
      [
        r (lhs "dlist")
          [ rhs 1 "name"; rhs 2 "value" ]
          (fun args ->
            v_list
              [
                Pvalue.raw
                  (Pvalue.RConst
                     (as_str ~ctx:"const" args.(0), as_int ~ctx:"const" args.(1)));
              ]);
        r (lhs "code") [] (fun _ -> code Cg.empty);
        r (lhs "errs") [] (fun _ -> v_list []);
      ];
    prod "decl_var" "decl" [ "ID"; "typ" ]
      [
        r (lhs "dlist")
          [ rhs 1 "name"; rhs 2 "ty" ]
          (fun args ->
            v_list
              [
                Pvalue.raw
                  (Pvalue.RVar (as_str ~ctx:"var" args.(0), aty ~ctx:"var" args.(1)));
              ]);
        r (lhs "code") [] (fun _ -> code Cg.empty);
        r (lhs "errs") [] (fun _ -> v_list []);
      ];
    prod "decl_proc" "decl" [ "ID"; "rlabel"; "params"; "block" ]
      [
        r (lhs "dlist")
          [ rhs 1 "name"; rhs 2 "lab"; rhs 3 "plist" ]
          (fun args ->
            v_list
              [
                Pvalue.raw
                  (Pvalue.RRoutine
                     ( as_str ~ctx:"proc" args.(0),
                       as_str ~ctx:"proc" args.(1),
                       psig_of_plist (plist_of_value ~ctx:"proc" args.(2)),
                       None ));
              ]);
        r (rhs 4 "env") [ lhs "env" ] id;
        r (rhs 4 "level") [ lhs "level" ] (fun args ->
            v_int (as_int ~ctx:"proc" args.(0) + 1));
        r (rhs 4 "entry") [ rhs 2 "lab" ] id;
        r (rhs 4 "params") [ rhs 3 "plist" ] id;
        r (rhs 4 "retty") [] (fun _ -> Value.Unit);
        r (rhs 4 "fname") [ rhs 1 "name" ] id;
        r (lhs "code") [ rhs 4 "code" ] id;
        r (lhs "errs") [ rhs 4 "errs" ] id;
      ];
    prod "decl_func" "decl" [ "ID"; "rlabel"; "params"; "typ"; "block" ]
      [
        r (lhs "dlist")
          [ rhs 1 "name"; rhs 2 "lab"; rhs 3 "plist"; rhs 4 "ty" ]
          (fun args ->
            v_list
              [
                Pvalue.raw
                  (Pvalue.RRoutine
                     ( as_str ~ctx:"func" args.(0),
                       as_str ~ctx:"func" args.(1),
                       psig_of_plist (plist_of_value ~ctx:"func" args.(2)),
                       Some (aty ~ctx:"func" args.(3)) ));
              ]);
        r (rhs 5 "env") [ lhs "env" ] id;
        r (rhs 5 "level") [ lhs "level" ] (fun args ->
            v_int (as_int ~ctx:"func" args.(0) + 1));
        r (rhs 5 "entry") [ rhs 2 "lab" ] id;
        r (rhs 5 "params") [ rhs 3 "plist" ] id;
        r (rhs 5 "retty") [ rhs 4 "ty" ] id;
        r (rhs 5 "fname") [ rhs 1 "name" ] id;
        r (lhs "code") [ rhs 5 "code" ] id;
        r (lhs "errs")
          [ rhs 5 "errs"; rhs 4 "ty"; rhs 1 "name" ]
          (fun args ->
            let t = aty ~ctx:"func" args.(1) in
            let extra =
              if Ast.is_scalar t then []
              else
                [
                  Printf.sprintf "function %s must return a scalar"
                    (as_str ~ctx:"func" args.(2));
                ]
            in
            cat_errs [ args.(0); errs_v extra ]);
      ];
    (* Label-generating empty productions. *)
    prod ~labels:1 "rlabel" "rlabel" []
      [ rl (lhs "lab") [] (fun ~labels _ -> v_str (Cg.plab labels.(0))) ];
    prod ~labels:1 "newlab" "newlab" []
      [ rl (lhs "lab") [] (fun ~labels _ -> v_str (Cg.lab labels.(0))) ];
    (* ---------------- parameters ---------------- *)
    prod "params_nil" "params" [] [ r (lhs "plist") [] (fun _ -> v_list []) ];
    prod "params_cons" "params" [ "params"; "param" ]
      [
        r (lhs "plist")
          [ rhs 1 "plist"; rhs 2 "pinfo" ]
          (fun args -> v_list (as_list ~ctx:"params" args.(0) @ [ args.(1) ]));
      ];
    prod "param_val" "param" [ "ID"; "typ" ]
      [
        r (lhs "pinfo")
          [ rhs 1 "name"; rhs 2 "ty" ]
          (fun args -> Value.Pair (args.(0), Value.Pair (args.(1), Value.Bool false)));
      ];
    prod "param_ref" "param" [ "ID"; "typ" ]
      [
        r (lhs "pinfo")
          [ rhs 1 "name"; rhs 2 "ty" ]
          (fun args -> Value.Pair (args.(0), Value.Pair (args.(1), Value.Bool true)));
      ];
    (* ---------------- types ---------------- *)
    prod "ty_int" "typ" [] [ r (lhs "ty") [] (fun _ -> Pvalue.ty TInt) ];
    prod "ty_bool" "typ" [] [ r (lhs "ty") [] (fun _ -> Pvalue.ty TBool) ];
    prod "ty_char" "typ" [] [ r (lhs "ty") [] (fun _ -> Pvalue.ty TChar) ];
    prod "ty_array" "typ" [ "NUMT"; "NUMT"; "typ" ]
      [
        r (lhs "ty")
          [ rhs 1 "value"; rhs 2 "value"; rhs 3 "ty" ]
          (fun args ->
            Pvalue.ty
              (TArray
                 ( as_int ~ctx:"array" args.(0),
                   as_int ~ctx:"array" args.(1),
                   aty ~ctx:"array" args.(2) )));
      ];
    prod "ty_record" "typ" [ "fields" ]
      [
        r (lhs "ty")
          [ rhs 1 "flist" ]
          (fun args ->
            Pvalue.ty
              (TRecord
                 (List.map
                    (fun f ->
                      let n, t = Value.as_pair ~ctx:"record" f in
                      (as_str ~ctx:"record" n, aty ~ctx:"record" t))
                    (as_list ~ctx:"record" args.(0)))));
      ];
    prod "fields_nil" "fields" [] [ r (lhs "flist") [] (fun _ -> v_list []) ];
    prod "fields_cons" "fields" [ "fields"; "field" ]
      [
        r (lhs "flist")
          [ rhs 1 "flist"; rhs 2 "finfo" ]
          (fun args -> v_list (as_list ~ctx:"fields" args.(0) @ [ args.(1) ]));
      ];
    prod "field" "field" [ "ID"; "typ" ]
      [
        r (lhs "finfo")
          [ rhs 1 "name"; rhs 2 "ty" ]
          (fun args -> Value.Pair (args.(0), args.(1)));
      ];
    (* ---------------- statement lists ---------------- *)
    prod "stmts_nil" "stmts" []
      [
        r (lhs "code") [] (fun _ -> code Cg.empty);
        r (lhs "errs") [] (fun _ -> v_list []);
      ];
    prod "stmts_cons" "stmts" [ "stmts"; "stmt" ]
      (down [ 1; 2 ]
      @ [
          r (lhs "code")
            [ rhs 1 "code"; rhs 2 "code" ]
            (fun args ->
              code
                (Cg.( ^^ )
                   (as_code ~ctx:"stmts" args.(0))
                   (as_code ~ctx:"stmts" args.(1))));
          errs_up [ 1; 2 ];
        ]);
  ]

let specs = structural_specs @ Stmt_rules.specs @ Expr_rules.specs

(* In `Threaded mode the start production seeds the chain: the program's
   block gets lab_in = 0. *)
let seed_chain mode prods =
  match mode with
  | `Base -> prods
  | `Threaded ->
      List.map
        (fun (p : Grammar.production) ->
          if p.Grammar.p_name = "program" then
            let open Grammar in
            production ~name:p.p_name ~lhs:p.p_lhs
              ~rhs:(Array.to_list p.p_rhs)
              (Array.to_list p.p_rules
              @ [ rule (rhs 2 "lab_in") ~deps:[] (fun _ -> v_int 0) ])
          else p)
        prods

(* ------------------------------------------------------------------ *)
(* Symbols                                                             *)
(* ------------------------------------------------------------------ *)

let symbols mode =
  let open Grammar in
  let t = if mode = `Threaded then [ inh "lab_in"; syn "lab_out" ] else [] in
  let tif name attrs = if is_threaded name then attrs @ t else attrs in
  let envlev = [ inh ~priority:true "env"; inh "level" ] in
  [
    terminal "ID" [ "name" ];
    terminal "NUMT" [ "value" ];
    terminal "CHART" [ "value" ];
    nonterminal "program" [ syn "code"; syn "errs" ];
    nonterminal "block"
      (tif "block"
         (envlev
         @ [
             inh "entry"; inh "params"; inh "retty"; inh "fname"; syn "code";
             syn "errs";
           ]));
    nonterminal ~split:512 "decls"
      (tif "decls" (envlev @ [ syn "dlist"; syn "code"; syn "errs" ]));
    nonterminal ~split:512 "decl"
      (tif "decl" (envlev @ [ syn "dlist"; syn "code"; syn "errs" ]));
    nonterminal "rlabel" (tif "rlabel" [ syn "lab" ]);
    nonterminal "newlab" (tif "newlab" [ syn "lab" ]);
    nonterminal "params" [ syn "plist" ];
    nonterminal "param" [ syn "pinfo" ];
    nonterminal "typ" [ syn "ty" ];
    nonterminal "fields" [ syn "flist" ];
    nonterminal "field" [ syn "finfo" ];
    nonterminal ~split:512 "stmts"
      (tif "stmts" (envlev @ [ syn "code"; syn "errs" ]));
    nonterminal ~split:512 "stmt"
      (tif "stmt" (envlev @ [ syn "code"; syn "errs" ]));
    nonterminal "cases"
      (tif "cases"
         (envlev @ [ inh "endlab"; syn "dispatch"; syn "bodies"; syn "errs" ]));
    nonterminal "case1"
      (tif "case1"
         (envlev @ [ inh "endlab"; syn "dispatch"; syn "bodies"; syn "errs" ]));
    nonterminal "optelse" (tif "optelse" (envlev @ [ syn "code"; syn "errs" ]));
    nonterminal "consts" [ inh "armlab"; syn "code" ];
    nonterminal "args"
      (tif "args" (envlev @ [ inh "psig"; syn "code"; syn "tys"; syn "errs" ]));
    nonterminal "wargs" (tif "wargs" (envlev @ [ syn "code"; syn "errs" ]));
    nonterminal "expr"
      (tif "expr" (envlev @ [ syn "ty"; syn "code"; syn "addr"; syn "errs" ]));
    nonterminal "lvalue"
      (tif "lvalue"
         (envlev
         @ [ syn "ty"; syn "acode"; syn "vcode"; syn "writable"; syn "errs" ]));
  ]

let make mode =
  let prods = seed_chain mode (List.map (compile_spec mode) specs) in
  Grammar.make
    ~name:(match mode with `Base -> "pascal" | `Threaded -> "pascal-threaded")
    ~start:"program" (symbols mode) prods

let grammar = make `Base

let grammar_threaded = make `Threaded

(* ------------------------------------------------------------------ *)
(* AST -> attribute-grammar tree                                       *)
(* ------------------------------------------------------------------ *)

let tree_of_program g (p : Ast.program) =
  let id_leaf name = Tree.leaf g "ID" [ ("name", v_str name) ] in
  let num_leaf v = Tree.leaf g "NUMT" [ ("value", v_int v) ] in
  let char_leaf c = Tree.leaf g "CHART" [ ("value", v_int (Char.code c)) ] in
  let node = Tree.node g in
  let rec typ_tree = function
    | TInt -> node "ty_int" []
    | TBool -> node "ty_bool" []
    | TChar -> node "ty_char" []
    | TArray (lo, hi, e) -> node "ty_array" [ num_leaf lo; num_leaf hi; typ_tree e ]
    | TRecord fs ->
        let fields =
          List.fold_left
            (fun acc (n, t) ->
              node "fields_cons" [ acc; node "field" [ id_leaf n; typ_tree t ] ])
            (node "fields_nil" []) fs
        in
        node "ty_record" [ fields ]
  in
  let rec lvalue_tree = function
    | LId n -> node "lv_id" [ id_leaf n ]
    | LIndex (b, e) -> node "lv_index" [ lvalue_tree b; expr_tree e ]
    | LField (b, f) -> node "lv_field" [ lvalue_tree b; id_leaf f ]
  and expr_tree = function
    | EInt n -> node "e_int" [ num_leaf n ]
    | EBool true -> node "e_true" []
    | EBool false -> node "e_false" []
    | EChar c -> node "e_char" [ char_leaf c ]
    | ELval lv -> node "e_lval" [ lvalue_tree lv ]
    | EBin (op, a, b) ->
        let name =
          match op with
          | Add -> "e_add"
          | Sub -> "e_sub"
          | Mul -> "e_mul"
          | Div -> "e_div"
          | Mod -> "e_mod"
          | And -> "e_and"
          | Or -> "e_or"
          | Eq -> "e_eq"
          | Ne -> "e_ne"
          | Lt -> "e_lt"
          | Le -> "e_le"
          | Gt -> "e_gt"
          | Ge -> "e_ge"
        in
        node name [ expr_tree a; expr_tree b ]
    | EUn (Neg, e) -> node "e_neg" [ expr_tree e ]
    | EUn (Not, e) -> node "e_not" [ expr_tree e ]
    | ECall (f, args) -> node "e_call" [ id_leaf f; args_tree args ]
  and args_tree = function
    | [] -> node "args_nil" []
    | e :: rest -> node "args_cons" [ expr_tree e; args_tree rest ]
  in
  let wargs_tree args =
    List.fold_right
      (fun e acc -> node "wargs_cons" [ expr_tree e; acc ])
      args (node "wargs_nil" [])
  in
  let rec stmts_tree stmts =
    List.fold_left
      (fun acc s -> node "stmts_cons" [ acc; stmt_tree s ])
      (node "stmts_nil" []) stmts
  and stmt_tree = function
    | SAssign (lv, e) -> node "s_assign" [ lvalue_tree lv; expr_tree e ]
    | SIf (c, t, e) -> node "s_if" [ expr_tree c; stmts_tree t; stmts_tree e ]
    | SWhile (c, body) -> node "s_while" [ expr_tree c; stmts_tree body ]
    | SRepeat (body, c) -> node "s_repeat" [ stmts_tree body; expr_tree c ]
    | SFor (v, e1, up, e2, body) ->
        node
          (if up then "s_for_up" else "s_for_down")
          [ id_leaf v; expr_tree e1; expr_tree e2; stmts_tree body ]
    | SCase (e, arms, default) ->
        let cases =
          List.fold_left
            (fun acc (consts, body) ->
              let ctree =
                match consts with
                | [] -> invalid_arg "case arm with no constants"
                | c0 :: rest ->
                    List.fold_left
                      (fun a c -> node "consts_cons" [ a; num_leaf c ])
                      (node "consts_one" [ num_leaf c0 ])
                      rest
              in
              node "cases_cons"
                [ acc; node "case1" [ node "newlab" []; ctree; stmts_tree body ] ])
            (node "cases_nil" []) arms
        in
        let optelse =
          match default with
          | None -> node "optelse_none" []
          | Some body -> node "optelse_some" [ stmts_tree body ]
        in
        node "s_case" [ node "newlab" []; expr_tree e; cases; optelse ]
    | SCall (f, args) -> node "s_call" [ id_leaf f; args_tree args ]
    | SWrite (args, false) -> node "s_write" [ wargs_tree args ]
    | SWrite (args, true) -> node "s_writeln" [ wargs_tree args ]
    | SRead lv -> node "s_read" [ lvalue_tree lv ]
  in
  let rec block_tree (b : Ast.block) =
    let decls =
      List.fold_left
        (fun acc d -> node "decls_cons" [ acc; decl_tree d ])
        (node "decls_nil" []) b.b_decls
    in
    node "block" [ decls; stmts_tree b.b_body ]
  and decl_tree = function
    | DConst (n, v) -> node "decl_const" [ id_leaf n; num_leaf v ]
    | DVar (n, t) -> node "decl_var" [ id_leaf n; typ_tree t ]
    | DRoutine rt ->
        let params =
          List.fold_left
            (fun acc (p : Ast.param) ->
              node "params_cons"
                [
                  acc;
                  node
                    (if p.p_ref then "param_ref" else "param_val")
                    [ id_leaf p.p_name; typ_tree p.p_ty ];
                ])
            (node "params_nil" []) rt.r_params
        in
        (match rt.r_ret with
        | None ->
            node "decl_proc"
              [ id_leaf rt.r_name; node "rlabel" []; params; block_tree rt.r_block ]
        | Some t ->
            node "decl_func"
              [
                id_leaf rt.r_name; node "rlabel" []; params; typ_tree t;
                block_tree rt.r_block;
              ])
  in
  node "program" [ id_leaf p.prog_name; block_tree p.prog_block ]

let code_of_attrs attrs =
  match List.assoc_opt "code" attrs with
  | Some v -> Rope.to_string (Codestr.to_rope (Cg.of_value ~ctx:"code" v))
  | None -> ""

let errors_of_attrs attrs =
  match List.assoc_opt "errs" attrs with
  | Some v -> as_errs ~ctx:"errs" v
  | None -> []
