open Pag_util

let qc ?(count = 200) name gen prop = Qc_seed.qc ~count name gen prop

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let opt_int = Alcotest.(option int)

let test_empty () =
  check_int "cardinal" 0 (Symtab.cardinal Symtab.empty);
  Alcotest.check opt_int "lookup misses" None (Symtab.lookup Symtab.empty "x")

let test_add_lookup () =
  let t = Symtab.add Symtab.empty "x" 1 in
  Alcotest.check opt_int "found" (Some 1) (Symtab.lookup t "x");
  Alcotest.check opt_int "other misses" None (Symtab.lookup t "y")

let test_applicative_update () =
  (* The defining property from the paper: st_add returns a NEW table and the
     old one is unchanged — evaluators can hold different versions. *)
  let t0 = Symtab.add Symtab.empty "x" 1 in
  let t1 = Symtab.add t0 "x" 2 in
  let t2 = Symtab.add t0 "y" 3 in
  Alcotest.check opt_int "old binding intact" (Some 1) (Symtab.lookup t0 "x");
  Alcotest.check opt_int "shadowed in new" (Some 2) (Symtab.lookup t1 "x");
  Alcotest.check opt_int "sibling version" (Some 1) (Symtab.lookup t2 "x");
  Alcotest.check opt_int "y only in t2" None (Symtab.lookup t1 "y")

let test_shadow_cardinal () =
  let t = Symtab.add (Symtab.add Symtab.empty "x" 1) "x" 2 in
  check_int "shadowing does not grow cardinal" 1 (Symtab.cardinal t)

let test_of_to_list () =
  let t = Symtab.of_list [ ("a", 1); ("b", 2); ("c", 3) ] in
  check_int "cardinal" 3 (Symtab.cardinal t);
  let l = List.sort compare (Symtab.to_list t) in
  Alcotest.(check (list (pair string int)))
    "bindings" [ ("a", 1); ("b", 2); ("c", 3) ] l

let test_equal () =
  let a = Symtab.of_list [ ("x", 1); ("y", 2) ] in
  let b = Symtab.of_list [ ("y", 2); ("x", 1) ] in
  check_bool "order independent" true (Symtab.equal ( = ) a b);
  let c = Symtab.add b "x" 9 in
  check_bool "differs after update" false (Symtab.equal ( = ) a c)

let test_balance_under_uniform_keys () =
  (* The paper's reason for hashing: hashed keys keep the BST balanced. 1000
     sequentially named identifiers must not produce a path-shaped tree. *)
  let t = ref Symtab.empty in
  for i = 1 to 1000 do
    t := Symtab.add !t (Printf.sprintf "ident%04d" i) i
  done;
  check_int "all present" 1000 (Symtab.cardinal !t);
  check_bool
    (Printf.sprintf "height %d within 4x of log2 n" (Symtab.height !t))
    true
    (Symtab.height !t <= 40)

let test_collisions_are_exact () =
  (* Even if two names collide in hash index, lookups must distinguish them.
     We cannot force a collision through the public API, but we can check
     a large population behaves exactly like an association map. *)
  let t = ref Symtab.empty in
  for i = 0 to 5000 do
    t := Symtab.add !t (string_of_int i) i
  done;
  let ok = ref true in
  for i = 0 to 5000 do
    if Symtab.lookup !t (string_of_int i) <> Some i then ok := false
  done;
  check_bool "exact lookups over 5001 names" true !ok

module SM = Map.Make (String)

type op = Add of string * int | Lookup of string

let op_gen =
  let open QCheck.Gen in
  let name = map (fun i -> Printf.sprintf "v%d" i) (int_bound 20) in
  frequency
    [ (3, map2 (fun n v -> Add (n, v)) name small_int); (1, map (fun n -> Lookup n) name) ]

let ops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Add (n, v) -> Printf.sprintf "add %s=%d" n v
             | Lookup n -> Printf.sprintf "lookup %s" n)
           ops))
    QCheck.Gen.(list_size (int_bound 60) op_gen)

let prop_model =
  qc "behaves like Map.Make(String)" ops_arb (fun ops ->
      let tab = ref Symtab.empty and m = ref SM.empty in
      List.for_all
        (function
          | Add (n, v) ->
              tab := Symtab.add !tab n v;
              m := SM.add n v !m;
              true
          | Lookup n -> Symtab.lookup !tab n = SM.find_opt n !m)
        ops
      && Symtab.cardinal !tab = SM.cardinal !m)

let prop_persistence =
  qc "snapshots are immutable" ops_arb (fun ops ->
      (* Take a snapshot mid-sequence; applying the rest must not change it. *)
      let tab = ref Symtab.empty in
      let half = List.length ops / 2 in
      List.iteri
        (fun i op ->
          if i < half then
            match op with
            | Add (n, v) -> tab := Symtab.add !tab n v
            | Lookup _ -> ())
        ops;
      let snapshot = !tab in
      let before = List.sort compare (Symtab.to_list snapshot) in
      List.iteri
        (fun i op ->
          if i >= half then
            match op with
            | Add (n, v) -> tab := Symtab.add !tab n v
            | Lookup _ -> ())
        ops;
      List.sort compare (Symtab.to_list snapshot) = before)

let suite =
  [
    ( "symtab",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "add/lookup" `Quick test_add_lookup;
        Alcotest.test_case "applicative update" `Quick test_applicative_update;
        Alcotest.test_case "shadow cardinal" `Quick test_shadow_cardinal;
        Alcotest.test_case "of/to list" `Quick test_of_to_list;
        Alcotest.test_case "equal" `Quick test_equal;
        Alcotest.test_case "balance" `Quick test_balance_under_uniform_keys;
        Alcotest.test_case "exactness at scale" `Quick
          test_collisions_are_exact;
        prop_model;
        prop_persistence;
      ] );
  ]
