lib/vax/isa.ml: Buffer Format List Printf
