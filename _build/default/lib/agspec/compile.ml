open Pag_core
open Spec_ast

exception Error of string

exception Scan_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type t = {
  c_spec : Spec_ast.t;
  c_grammar : Grammar.t;
  c_tables : Lrgen.Lalr.tables;
  c_plan : Pag_analysis.Kastens.plan option;
  c_prod_names : (string, string) Hashtbl.t; (* cfg prod name -> ag prod name *)
}

(* ---------------- semantic expressions ---------------- *)

(* Dependencies of an expression: attribute references in occurrence order,
   deduplicated. *)
let deps_of_expr e =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec go = function
    | SAttr (pos, attr) ->
        if not (Hashtbl.mem seen (pos, attr)) then begin
          Hashtbl.add seen (pos, attr) ();
          out := (pos, attr) :: !out
        end
    | SInt _ | SStr _ -> ()
    | SCall (_, args) -> List.iter go args
  in
  go e;
  List.rev !out

let compile_expr e =
  (* args arrive in deps_of_expr order *)
  let deps = deps_of_expr e in
  let index = Hashtbl.create 8 in
  List.iteri (fun i d -> Hashtbl.add index d i) deps;
  let rec go e (args : Value.t array) =
    match e with
    | SAttr (pos, attr) -> args.(Hashtbl.find index (pos, attr))
    | SInt n -> Value.Int n
    | SStr s -> Value.str s
    | SCall (f, es) ->
        let fn = Primitives.lookup f in
        fn (List.map (fun e -> go e args) es)
  in
  (deps, fun args -> go e args)

(* ---------------- grammar construction ---------------- *)

let translator spec =
  (* symbols *)
  let terminals =
    List.map
      (fun ns -> Grammar.terminal ns.n_term [ ns.n_attr ])
      spec.s_names
    @ List.map (fun kw -> Grammar.terminal kw.k_term []) spec.s_keywords
  in
  let nonterminals =
    List.map
      (fun nt ->
        let attrs =
          List.map
            (fun a ->
              if a.a_inherited then Grammar.inh ~priority:a.a_priority a.a_name
              else Grammar.syn ~priority:a.a_priority a.a_name)
            nt.nt_attrs
        in
        Grammar.nonterminal ?split:nt.nt_split nt.nt_name attrs)
      spec.s_nts
  in
  (* productions with unique names lhs#k *)
  let counts = Hashtbl.create 16 in
  let prod_name lhs =
    let k = Option.value ~default:0 (Hashtbl.find_opt counts lhs) in
    Hashtbl.replace counts lhs (k + 1);
    Printf.sprintf "%s#%d" lhs k
  in
  let ag_prods =
    List.map
      (fun p ->
        let name = prod_name p.p_lhs in
        let rules =
          List.map
            (fun r ->
              let deps, fn = compile_expr r.r_expr in
              let target =
                if r.r_pos = 0 then Grammar.lhs r.r_attr
                else Grammar.rhs r.r_pos r.r_attr
              in
              let deps =
                List.map
                  (fun (pos, attr) ->
                    if pos = 0 then Grammar.lhs attr else Grammar.rhs pos attr)
                  deps
              in
              Grammar.rule target ~deps fn)
            p.p_rules
        in
        (name, Grammar.production ~name ~lhs:p.p_lhs ~rhs:p.p_rhs rules))
      spec.s_prods
  in
  let grammar =
    try
      Grammar.make ~name:"agspec" ~start:spec.s_start
        (terminals @ nonterminals)
        (List.map snd ag_prods)
    with Grammar.Error msg -> error "invalid attribute grammar: %s" msg
  in
  (* parser tables *)
  let cfg_prods =
    List.map
      (fun (name, (p : Grammar.production)) ->
        {
          Lrgen.Cfg.cp_name = name;
          cp_lhs = p.Grammar.p_lhs;
          cp_rhs = Array.to_list p.Grammar.p_rhs;
          cp_prec = None;
        })
      ag_prods
  in
  let prec =
    List.map
      (fun (a, ts) ->
        ( (match a with
          | Left -> Lrgen.Cfg.Left
          | Right -> Lrgen.Cfg.Right
          | Nonassoc -> Lrgen.Cfg.Nonassoc),
          ts ))
      spec.s_prec
  in
  let cfg =
    Lrgen.Cfg.make
      ~terminals:
        (List.map (fun ns -> ns.n_term) spec.s_names
        @ List.map (fun kw -> kw.k_term) spec.s_keywords)
      ~start:spec.s_start ~prec cfg_prods
  in
  let tables = Lrgen.Lalr.build cfg in
  let plan =
    match Pag_analysis.Kastens.analyze grammar with
    | Ok p -> Some p
    | Error _ -> None
  in
  let c_prod_names = Hashtbl.create 16 in
  List.iter (fun (n, _) -> Hashtbl.replace c_prod_names n n) ag_prods;
  { c_spec = spec; c_grammar = grammar; c_tables = tables; c_plan = plan; c_prod_names }

let grammar t = t.c_grammar

let tables t = t.c_tables

let plan t = t.c_plan

(* ---------------- scanner ---------------- *)

(* Generic scanner driven by the %name/%keyword declarations: longest-match
   keywords (so "<=" beats "<"), identifiers, decimal numbers. *)
let scan spec src =
  let kws =
    List.sort
      (fun a b -> compare (String.length b.k_text) (String.length a.k_text))
      spec.s_keywords
  in
  let ident_term =
    List.find_opt (fun ns -> ns.n_class = Ident) spec.s_names
  in
  let number_term =
    List.find_opt (fun ns -> ns.n_class = Number) spec.s_names
  in
  let n = String.length src in
  let out = ref [] in
  let i = ref 0 in
  let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let is_digit c = c >= '0' && c <= '9' in
  let starts_with text =
    String.length text > 0
    && !i + String.length text <= n
    && String.sub src !i (String.length text) = text
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else begin
      (* keywords first (longest match); word-like keywords must not steal a
         prefix of a longer identifier *)
      let kw =
        List.find_opt
          (fun kw ->
            starts_with kw.k_text
            && not
                 (is_alpha kw.k_text.[0]
                 && !i + String.length kw.k_text < n
                 && (is_alpha src.[!i + String.length kw.k_text]
                    || is_digit src.[!i + String.length kw.k_text])))
          kws
      in
      match kw with
      | Some kw ->
          out := (kw.k_term, None) :: !out;
          i := !i + String.length kw.k_text
      | None ->
          if is_digit c then begin
            let start = !i in
            while !i < n && is_digit src.[!i] do
              incr i
            done;
            match number_term with
            | Some ns ->
                out :=
                  ( ns.n_term,
                    Some (ns.n_attr, Value.Int (int_of_string (String.sub src start (!i - start)))) )
                  :: !out
            | None -> raise (Scan_error "no %name number terminal declared")
          end
          else if is_alpha c then begin
            let start = !i in
            while !i < n && (is_alpha src.[!i] || is_digit src.[!i]) do
              incr i
            done;
            match ident_term with
            | Some ns ->
                out :=
                  ( ns.n_term,
                    Some (ns.n_attr, Value.str (String.sub src start (!i - start))) )
                  :: !out
            | None -> raise (Scan_error "no %name ident terminal declared")
          end
          else raise (Scan_error (Printf.sprintf "unexpected character %C" c))
    end
  done;
  List.rev !out

let parse t src =
  let tokens = scan t.c_spec src in
  try
    Lrgen.Engine.parse t.c_tables
      ~shift:(fun term payload ->
        match payload with
        | Some (attr, v) -> Tree.leaf t.c_grammar term [ (attr, v) ]
        | None -> Tree.leaf t.c_grammar term [])
      ~reduce:(fun prod children -> Tree.node t.c_grammar prod.Lrgen.Cfg.cp_name children)
      tokens
  with Lrgen.Engine.Syntax_error { position; token; expected } ->
    error "syntax error at token %d (%s); expected one of: %s" position token
      (String.concat ", " expected)

let evaluate t tree =
  let store =
    match t.c_plan with
    | Some plan ->
        let store, _ = Pag_eval.Static_eval.eval plan tree in
        store
    | None ->
        let store, _ = Pag_eval.Dynamic.eval t.c_grammar tree in
        store
  in
  Pag_eval.Store.root_attrs store

let evaluate_parallel t opts tree =
  match t.c_plan with
  | Some plan -> Pag_parallel.Runner.run_sim opts t.c_grammar (Some plan) tree
  | None ->
      Pag_parallel.Runner.run_sim
        { opts with Pag_parallel.Runner.mode = `Dynamic }
        t.c_grammar None tree
