open Pag_util
open Pag_core

type t = {
  prod : Grammar.production;
  syms : Grammar.symbol array; (* symbol at each position, 0 = LHS *)
  base : int array; (* occurrence index of attr 0 at each position *)
  total : int;
}

let of_production g p =
  let arity = Array.length p.Grammar.p_rhs in
  let syms =
    Array.init (arity + 1) (fun pos ->
        if pos = 0 then Grammar.symbol g p.Grammar.p_lhs
        else Grammar.symbol g p.Grammar.p_rhs.(pos - 1))
  in
  let base = Array.make (arity + 1) 0 in
  let total = ref 0 in
  Array.iteri
    (fun pos s ->
      base.(pos) <- !total;
      total := !total + Array.length s.Grammar.s_attrs)
    syms;
  { prod = p; syms; base; total = !total }

let production t = t.prod

let count t = t.total

let occ t ~pos ~idx = t.base.(pos) + idx

let attr_idx sym name =
  let rec find i =
    if i >= Array.length sym.Grammar.s_attrs then
      invalid_arg ("Localdep: unknown attribute " ^ name)
    else if sym.Grammar.s_attrs.(i).Grammar.a_name = name then i
    else find (i + 1)
  in
  find 0

let occ_of_ref t (r : Grammar.attr_ref) =
  occ t ~pos:r.Grammar.pos ~idx:(attr_idx t.syms.(r.Grammar.pos) r.Grammar.attr)

let pos_of t o =
  let rec find pos =
    if pos = Array.length t.base - 1 || t.base.(pos + 1) > o then
      (pos, o - t.base.(pos))
    else find (pos + 1)
  in
  find 0

let sym_at t pos = t.syms.(pos)

let attr_at t o =
  let pos, idx = pos_of t o in
  t.syms.(pos).Grammar.s_attrs.(idx)

let dp_graph t =
  let edges = ref [] in
  Array.iter
    (fun (r : Grammar.rule) ->
      let tgt = occ_of_ref t r.Grammar.r_target in
      List.iter
        (fun d -> edges := (occ_of_ref t d, tgt) :: !edges)
        r.Grammar.r_deps)
    t.prod.Grammar.p_rules;
  Digraph.make t.total !edges

let occ_name t o =
  let pos, idx = pos_of t o in
  let attr = t.syms.(pos).Grammar.s_attrs.(idx).Grammar.a_name in
  if pos = 0 then Printf.sprintf "$$.%s" attr
  else Printf.sprintf "$%d.%s" pos attr
