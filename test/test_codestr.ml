open Pag_core
open Pag_util

let qc ?(count = 150) name gen prop = Qc_seed.qc ~count name gen prop

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let test_empty () =
  check_int "length" 0 (Codestr.length Codestr.empty);
  check_int "frags" 0 (Codestr.frag_count Codestr.empty);
  check_str "text" "" (Rope.to_string (Codestr.to_rope Codestr.empty))

let test_concat () =
  let c = Codestr.concat (Codestr.of_string "mov ") (Codestr.of_string "r0") in
  check_str "text" "mov r0" (Rope.to_string (Codestr.to_rope c));
  check_int "length" 6 (Codestr.length c)

let test_concat_identity () =
  let c = Codestr.of_string "x" in
  check_bool "left id" true
    (Rope.to_string (Codestr.to_rope (Codestr.concat Codestr.empty c)) = "x");
  check_bool "right id" true
    (Rope.to_string (Codestr.to_rope (Codestr.concat c Codestr.empty)) = "x")

let test_extract_and_resolve () =
  (* The librarian round trip: extract text into fragments, resolve back. *)
  let c =
    Codestr.concat_list
      [ Codestr.of_string "AAA"; Codestr.of_string "BBB"; Codestr.of_string "CC" ]
  in
  let next = ref 100 in
  let alloc () =
    incr next;
    !next
  in
  let desc, frags = Codestr.extract_texts ~alloc c in
  check_bool "descriptor has fragments" true (Codestr.frag_count desc > 0);
  check_int "length preserved" 8 (Codestr.length desc);
  check_bool "wire size shrinks" true (Codestr.wire_size desc <= Codestr.wire_size c + 16);
  let tbl = Hashtbl.create 4 in
  List.iter (fun (id, text) -> Hashtbl.add tbl id text) frags;
  let text = Codestr.resolve ~lookup:(Hashtbl.find tbl) desc in
  check_str "resolved" "AAABBBCC" (Rope.to_string text)

let test_unresolved_raises () =
  let next = ref 0 in
  let desc, _ =
    Codestr.extract_texts
      ~alloc:(fun () ->
        incr next;
        !next)
      (Codestr.of_string "abc")
  in
  match Codestr.to_rope desc with
  | exception Codestr.Unresolved _ -> ()
  | _ -> Alcotest.fail "expected Unresolved"

let test_value_embedding () =
  let v = Codestr.value (Codestr.of_string "hello") in
  let c = Codestr.of_value ~ctx:"t" v in
  check_str "round trip" "hello" (Rope.to_string (Codestr.to_rope c));
  (match Codestr.of_value ~ctx:"t" (Value.Int 3) with
  | exception Value.Type_error _ -> ()
  | _ -> Alcotest.fail "expected type error");
  (* Value.equal compares local code strings by content *)
  let a = Codestr.value (Codestr.concat (Codestr.of_string "ab") (Codestr.of_string "c")) in
  let b = Codestr.value (Codestr.of_string "abc") in
  check_bool "content equality" true (Value.equal a b)

let test_byte_size_via_value () =
  (* Value.byte_size of a code string is its wire size *)
  let c = Codestr.of_string "12345" in
  check_int "plain text" 5 (Value.byte_size (Codestr.value c))

let arb_parts =
  QCheck.make
    ~print:(fun l -> String.concat "|" l)
    QCheck.Gen.(list_size (int_bound 12) (string_size ~gen:printable (int_bound 10)))

let prop_concat_list_text =
  qc "concat_list denotes the concatenation" arb_parts (fun parts ->
      let c = Codestr.concat_list (List.map Codestr.of_string parts) in
      Rope.to_string (Codestr.to_rope c) = String.concat "" parts)

let prop_extract_resolve_roundtrip =
  qc "extract/resolve round trip" arb_parts (fun parts ->
      let c = Codestr.concat_list (List.map Codestr.of_string parts) in
      let next = ref 0 in
      let desc, frags =
        Codestr.extract_texts
          ~alloc:(fun () ->
            incr next;
            !next)
          c
      in
      let tbl = Hashtbl.create 8 in
      List.iter (fun (id, t) -> Hashtbl.add tbl id t) frags;
      Rope.to_string (Codestr.resolve ~lookup:(Hashtbl.find tbl) desc)
      = String.concat "" parts
      && Codestr.length desc = Codestr.length c)

let prop_unique_frag_ids =
  qc "extracted fragment ids are the allocator's" arb_parts (fun parts ->
      let c = Codestr.concat_list (List.map Codestr.of_string parts) in
      let next = ref 0 in
      let _, frags =
        Codestr.extract_texts
          ~alloc:(fun () ->
            incr next;
            !next)
          c
      in
      let ids = List.map fst frags in
      List.length (List.sort_uniq compare ids) = List.length ids)

let suite =
  [
    ( "codestr",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "concat" `Quick test_concat;
        Alcotest.test_case "identity" `Quick test_concat_identity;
        Alcotest.test_case "extract/resolve" `Quick test_extract_and_resolve;
        Alcotest.test_case "unresolved" `Quick test_unresolved_raises;
        Alcotest.test_case "value embedding" `Quick test_value_embedding;
        Alcotest.test_case "byte size" `Quick test_byte_size_via_value;
        prop_concat_list_text;
        prop_extract_resolve_roundtrip;
        prop_unique_frag_ids;
      ] );
  ]
