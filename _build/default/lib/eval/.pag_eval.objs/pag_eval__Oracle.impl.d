lib/eval/oracle.ml: Array Grammar Hashtbl List Pag_core Printf Store Tree Uid
