lib/core/codestr.mli: Format Pag_util Rope Value
