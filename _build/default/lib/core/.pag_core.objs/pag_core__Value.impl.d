lib/core/value.ml: Format List Pag_util Printf Rope String Symtab
