lib/pascal/pvalue.ml: Ast Format List Pag_core String Value
