open Pag_core
open Pag_util

let split_min_bytes = 48

let code s = Codestr.value (Codestr.of_string s)

let ccat l =
  Codestr.value
    (Codestr.concat_list (List.map (Codestr.of_value ~ctx:"ccat") l))

let f_copy args = args.(0)

let f_nil _ = Value.List []

let f_append args =
  Value.List
    (Value.as_list ~ctx:"append" args.(0) @ Value.as_list ~ctx:"append" args.(1))

let f_add args =
  Value.Int (Value.as_int ~ctx:"add" args.(0) + Value.as_int ~ctx:"add" args.(1))

let f_mul args =
  Value.Int (Value.as_int ~ctx:"mul" args.(0) * Value.as_int ~ctx:"mul" args.(1))

let f_lookup args =
  let tab = Value.as_tab ~ctx:"lookup" args.(0) in
  let name = Rope.to_string (Value.as_str ~ctx:"lookup" args.(1)) in
  match Symtab.lookup tab name with
  | Some v -> v
  | None -> raise (Value.Type_error ("unbound identifier " ^ name))

(* visit 1 -> visit 2 turnaround at the root: decls become the global table *)
let f_tab_of_decls args =
  let decls = Value.as_list ~ctx:"tab_of_decls" args.(0) in
  Value.Tab
    (List.fold_left
       (fun tab d ->
         let name, v = Value.as_pair ~ctx:"tab_of_decls" d in
         Symtab.add tab (Rope.to_string (Value.as_str ~ctx:"tab_of_decls" name)) v)
       Symtab.empty decls)

let grammar =
  let open Grammar in
  let attrs =
    [
      syn "decls";
      syn "value";
      syn "code";
      inh ~priority:true "stab";
    ]
  in
  make ~name:"stackcode" ~start:"main_expr"
    [
      terminal "IDENTIFIER" [ "string" ];
      terminal "NUMBER" [ "value" ];
      terminal "LET" [];
      terminal "EQ" [];
      terminal "IN" [];
      terminal "NI" [];
      terminal "PLUS" [];
      terminal "TIMES" [];
      nonterminal "main_expr" [ syn "value"; syn "code" ];
      nonterminal "expr" attrs;
      nonterminal ~split:split_min_bytes "block" attrs;
    ]
    [
      production ~name:"main" ~lhs:"main_expr" ~rhs:[ "expr" ]
        [
          rule (lhs "value") ~deps:[ rhs 1 "value" ] f_copy;
          rule ~name:"code=wrap" (lhs "code") ~deps:[ rhs 1 "code" ] (fun a ->
              ccat [ a.(0); code "HALT\n" ]);
          rule ~name:"stab=of_decls" (rhs 1 "stab") ~deps:[ rhs 1 "decls" ]
            f_tab_of_decls;
        ];
      production ~name:"add" ~lhs:"expr" ~rhs:[ "expr"; "PLUS"; "expr" ]
        [
          rule (lhs "decls") ~deps:[ rhs 1 "decls"; rhs 3 "decls" ] f_append;
          rule (lhs "value") ~deps:[ rhs 1 "value"; rhs 3 "value" ] f_add;
          rule ~name:"code=add" (lhs "code")
            ~deps:[ rhs 1 "code"; rhs 3 "code" ]
            (fun a -> ccat [ a.(0); a.(1); code "ADD\n" ]);
          rule (rhs 1 "stab") ~deps:[ lhs "stab" ] f_copy;
          rule (rhs 3 "stab") ~deps:[ lhs "stab" ] f_copy;
        ];
      production ~name:"mul" ~lhs:"expr" ~rhs:[ "expr"; "TIMES"; "expr" ]
        [
          rule (lhs "decls") ~deps:[ rhs 1 "decls"; rhs 3 "decls" ] f_append;
          rule (lhs "value") ~deps:[ rhs 1 "value"; rhs 3 "value" ] f_mul;
          rule ~name:"code=mul" (lhs "code")
            ~deps:[ rhs 1 "code"; rhs 3 "code" ]
            (fun a -> ccat [ a.(0); a.(1); code "MUL\n" ]);
          rule (rhs 1 "stab") ~deps:[ lhs "stab" ] f_copy;
          rule (rhs 3 "stab") ~deps:[ lhs "stab" ] f_copy;
        ];
      production ~name:"num" ~lhs:"expr" ~rhs:[ "NUMBER" ]
        [
          rule (lhs "decls") ~deps:[] f_nil;
          rule (lhs "value") ~deps:[ rhs 1 "value" ] f_copy;
          rule ~name:"code=push" (lhs "code") ~deps:[ rhs 1 "value" ] (fun a ->
              code (Printf.sprintf "PUSH %d\n" (Value.as_int ~ctx:"push" a.(0))));
        ];
      production ~name:"var" ~lhs:"expr" ~rhs:[ "IDENTIFIER" ]
        [
          rule (lhs "decls") ~deps:[] f_nil;
          rule (lhs "value") ~deps:[ lhs "stab"; rhs 1 "string" ] f_lookup;
          rule ~name:"code=load" (lhs "code")
            ~deps:[ lhs "stab"; rhs 1 "string" ]
            (fun a ->
              code
                (Printf.sprintf "PUSH %d ; %s\n"
                   (Value.as_int ~ctx:"load" (f_lookup a))
                   (Rope.to_string (Value.as_str ~ctx:"load" a.(1)))));
        ];
      production ~name:"blockexpr" ~lhs:"expr" ~rhs:[ "block" ]
        [
          rule (lhs "decls") ~deps:[ rhs 1 "decls" ] f_copy;
          rule (lhs "value") ~deps:[ rhs 1 "value" ] f_copy;
          rule (lhs "code") ~deps:[ rhs 1 "code" ] f_copy;
          rule (rhs 1 "stab") ~deps:[ lhs "stab" ] f_copy;
        ];
      production ~name:"block" ~lhs:"block"
        ~rhs:[ "LET"; "IDENTIFIER"; "EQ"; "NUMBER"; "IN"; "expr"; "NI" ]
        [
          rule ~name:"decls=cons" (lhs "decls")
            ~deps:[ rhs 2 "string"; rhs 4 "value"; rhs 6 "decls" ]
            (fun a ->
              Value.List
                (Value.Pair (Value.Str (Value.as_str ~ctx:"decl" a.(0)), a.(1))
                :: Value.as_list ~ctx:"decl" a.(2)));
          rule (lhs "value") ~deps:[ rhs 6 "value" ] f_copy;
          rule ~name:"code=label" (lhs "code")
            ~deps:[ rhs 2 "string"; rhs 6 "code" ]
            (fun a ->
              ccat
                [
                  code
                    (Printf.sprintf "L%d: ; let %s\n" (Uid.fresh ())
                       (Rope.to_string (Value.as_str ~ctx:"label" a.(0))));
                  a.(1);
                ]);
          rule (rhs 6 "stab") ~deps:[ lhs "stab" ] f_copy;
        ];
    ]

let kw name = Tree.leaf grammar name []

let num n =
  Tree.node grammar "num" [ Tree.leaf grammar "NUMBER" [ ("value", Value.Int n) ] ]

let var x =
  Tree.node grammar "var"
    [ Tree.leaf grammar "IDENTIFIER" [ ("string", Value.str x) ] ]

let add a b = Tree.node grammar "add" [ a; kw "PLUS"; b ]

let mul a b = Tree.node grammar "mul" [ a; kw "TIMES"; b ]

let let_in x n body =
  let block =
    Tree.node grammar "block"
      [
        kw "LET";
        Tree.leaf grammar "IDENTIFIER" [ ("string", Value.str x) ];
        kw "EQ";
        Tree.leaf grammar "NUMBER" [ ("value", Value.Int n) ];
        kw "IN";
        body;
        kw "NI";
      ]
  in
  Tree.node grammar "blockexpr" [ block ]

let main e = Tree.node grammar "main" [ e ]

let random_program st ~depth ~blocks =
  let names = List.init (max 1 blocks) (fun i -> Printf.sprintf "g%d" i) in
  let rec body depth =
    if depth = 0 then
      if Random.State.bool st then num (Random.State.int st 50)
      else var (List.nth names (Random.State.int st (List.length names)))
    else
      match Random.State.int st 3 with
      | 0 -> add (body (depth - 1)) (body (depth - 1))
      | 1 -> mul (body (depth - 1)) (body (depth - 1))
      | _ ->
          (* local extra binding with a fresh unique name *)
          let x = Printf.sprintf "d%d_%d" depth (Random.State.int st 100000) in
          let_in x (Random.State.int st 50) (add (var x) (body (depth - 1)))
  in
  let wrapped =
    List.fold_left
      (fun acc (i, name) -> let_in name (i * 7) acc)
      (body depth)
      (List.mapi (fun i n -> (i, n)) names)
  in
  main wrapped

let reference_value t =
  (* Pass 1: collect all global declarations; pass 2: interpret. *)
  let decls = Hashtbl.create 16 in
  let rec collect (n : Tree.t) =
    (match n.Tree.prod with
    | Some p when p.Grammar.p_name = "block" ->
        let name =
          Rope.to_string
            (Value.as_str ~ctx:"ref" (Tree.term_attr n.Tree.children.(1) "string"))
        in
        let v =
          Value.as_int ~ctx:"ref" (Tree.term_attr n.Tree.children.(3) "value")
        in
        Hashtbl.replace decls name v
    | _ -> ());
    Array.iter collect n.Tree.children
  in
  collect t;
  let rec eval (n : Tree.t) =
    match n.Tree.prod with
    | None -> failwith "reference_value: leaf"
    | Some p -> (
        match p.Grammar.p_name with
        | "main" | "blockexpr" -> eval n.Tree.children.(0)
        | "num" -> Value.as_int ~ctx:"ref" (Tree.term_attr n.Tree.children.(0) "value")
        | "var" ->
            Hashtbl.find decls
              (Rope.to_string
                 (Value.as_str ~ctx:"ref"
                    (Tree.term_attr n.Tree.children.(0) "string")))
        | "add" -> eval n.Tree.children.(0) + eval n.Tree.children.(2)
        | "mul" -> eval n.Tree.children.(0) * eval n.Tree.children.(2)
        | "block" -> eval n.Tree.children.(5)
        | other -> failwith ("reference_value: " ^ other))
  in
  eval t

let mask_labels s =
  (* Replace label numbers ("L1000023:") with "L_:" so code from different
     decompositions compares equal. *)
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if
      s.[!i] = 'L'
      && !i + 1 < n
      && s.[!i + 1] >= '0'
      && s.[!i + 1] <= '9'
      && (!i = 0 || s.[!i - 1] = '\n')
    then begin
      Buffer.add_string buf "L_";
      incr i;
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
        incr i
      done
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf
