type 'a t =
  | Empty
  | Node of {
      key : int; (* hash index of the identifiers in [bucket] *)
      bucket : (string * 'a) list;
      left : 'a t;
      right : 'a t;
    }

let empty = Empty

let hash_of_name = Hashtbl.hash

let rec add_at tab key name v =
  match tab with
  | Empty -> Node { key; bucket = [ (name, v) ]; left = Empty; right = Empty }
  | Node n ->
      if key < n.key then Node { n with left = add_at n.left key name v }
      else if key > n.key then Node { n with right = add_at n.right key name v }
      else
        let bucket = (name, v) :: List.remove_assoc name n.bucket in
        Node { n with bucket }

let add tab name v = add_at tab (hash_of_name name) name v

let rec lookup_at tab key name =
  match tab with
  | Empty -> None
  | Node n ->
      if key < n.key then lookup_at n.left key name
      else if key > n.key then lookup_at n.right key name
      else List.assoc_opt name n.bucket

let lookup tab name = lookup_at tab (hash_of_name name) name

let mem tab name = lookup tab name <> None

let rec fold f tab acc =
  match tab with
  | Empty -> acc
  | Node n ->
      let acc = fold f n.left acc in
      let acc =
        List.fold_left (fun acc (name, v) -> f name v acc) acc n.bucket
      in
      fold f n.right acc

let cardinal tab = fold (fun _ _ n -> n + 1) tab 0

let rec height = function
  | Empty -> 0
  | Node n -> 1 + max (height n.left) (height n.right)

let of_list l = List.fold_left (fun tab (name, v) -> add tab name v) empty l

let to_list tab = fold (fun name v acc -> (name, v) :: acc) tab []

let equal veq a b =
  let subset x y =
    fold
      (fun name v ok ->
        ok && match lookup y name with Some w -> veq v w | None -> false)
      x true
  in
  cardinal a = cardinal b && subset a b

(* ------------------------------------------------------------------ *)
(* Hash-consing                                                        *)
(* ------------------------------------------------------------------ *)

(* Tables are interned bottom-up, one BST node at a time: children and
   bucket values are canonicalized first, so the arena's equality compares
   them with [==] and each node costs O(bucket) to intern. The canonical
   form preserves the BST shape; since the shape is a function of the
   insertion history, tables built by the same sequence of [add]s (the
   common case for identical declaration subtrees) collapse to one
   representation. Shape-distinct but binding-equal tables merely stay
   [equal] — interning is an optimization, never a semantic change. *)

type 'a interner = {
  it_arena : 'a t Hcons.t;
  it_hash : ('a t, int) Phys_tbl.t;  (* canonical node -> structural hash *)
  (* any node -> canonical node; direct-mapped so the physically distinct
     but equal tables every evaluation rebuilds evict each other instead
     of chaining under the content-based polymorphic hash *)
  it_memo : ('a t, 'a t) Phys_cache.t;
  it_node_hash : 'a t -> int;
}

let mix h1 h2 = (h1 * 0x01000193) lxor (h2 + 0x9e3779b9 + (h1 lsl 6))

let interner ~value_hash ~value_identical name =
  let it_hash = Phys_tbl.create 256 in
  let child_hash = function
    | Empty -> 0x3_1415
    | n -> ( match Phys_tbl.find_opt it_hash n with Some h -> h | None -> 0)
  in
  (* Shallow hash: children and bucket values must already be canonical. *)
  let node_hash = function
    | Empty -> 0x3_1415
    | Node n ->
        List.fold_left
          (fun acc (nm, v) -> mix acc (mix (Hashtbl.hash nm) (value_hash v)))
          (mix n.key (mix (child_hash n.left) (child_hash n.right)))
          n.bucket
  in
  let node_equal a b =
    match (a, b) with
    | Empty, Empty -> true
    | Node x, Node y ->
        x.key = y.key && x.left == y.left && x.right == y.right
        && List.compare_lengths x.bucket y.bucket = 0
        && List.for_all2
             (fun (n1, v1) (n2, v2) ->
               String.equal n1 n2 && value_identical v1 v2)
             x.bucket y.bucket
    | _ -> false
  in
  {
    it_arena = Hcons.create ~hash:node_hash ~equal:node_equal name;
    it_hash;
    it_memo = Phys_cache.create 14;
    it_node_hash = node_hash;
  }

(* Already-canonical nodes are exactly the keys of [it_hash]; testing it
   first makes re-interning a canonical table O(1). Without this, interning
   recurses into children and bucket values before consulting the arena —
   on canonical tables with shared substructure (hash-consed evaluation
   nests canonical scope tables inside each other) an eviction from
   [it_memo] then re-walks the sharing DAG as a tree, which is exponential
   in the nesting depth. *)
let rec intern it ~intern_value tab =
  match tab with
  | Empty -> Empty
  | Node _ when Phys_tbl.mem it.it_hash tab -> tab
  | Node n -> (
      match Phys_cache.find_opt it.it_memo tab with
      | Some c -> c
      | None ->
          let left = intern it ~intern_value n.left in
          let right = intern it ~intern_value n.right in
          let bucket =
            List.map
              (fun ((nm, v) as pair) ->
                let v' = intern_value v in
                if v' == v then pair else (nm, v'))
              n.bucket
          in
          let cand =
            if
              left == n.left && right == n.right
              && List.for_all2 (fun (_, v) (_, v') -> v == v') n.bucket bucket
            then tab
            else Node { key = n.key; bucket; left; right }
          in
          let canon = Hcons.intern it.it_arena cand in
          if not (Phys_tbl.mem it.it_hash canon) then
            Phys_tbl.replace it.it_hash canon (it.it_node_hash canon);
          Phys_cache.replace it.it_memo tab canon;
          canon)

let hash it ~intern_value tab =
  let c = intern it ~intern_value tab in
  match Phys_tbl.find_opt it.it_hash c with
  | Some h -> h
  | None -> it.it_node_hash c
