lib/parallel/coordinator.mli: Grammar Pag_core Split Transport Tree Value
