(* pagc — the parallel Pascal compiler.

   Compiles a Pascal-subset source file to VAX assembly by attribute-grammar
   evaluation, sequentially or in parallel on the simulated network
   multiprocessor (or on OCaml domains). Mirrors the paper's generated
   compiler, including the runtime granularity argument.

     pagc prog.pas                          sequential static evaluation
     pagc --machines 5 prog.pas             parallel combined evaluator
     pagc --machines 5 --evaluator dynamic  parallel dynamic evaluator
     pagc --run prog.pas                    compile, assemble, execute
     pagc --gantt --machines 5 prog.pas     print the evaluator timeline
     pagc --machines 5 --trace out.json --report prog.pas
                                            record a Chrome trace + report
     pagc -m 5 --faults drop=0.05,dup=0.02 prog.pas
                                            compile over a faulty network
     pagc --serve workload.serve            multi-tenant compile service *)

open Cmdliner
open Pascal
module Obs = Pag_obs.Obs
module Export = Pag_obs.Export

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let gantt_unavailable () =
  Printf.eprintf
    "pagc: --gantt: timeline requires --machines >= 2 with the sim transport\n"

(* ------------------------------------------------------------------ *)
(* --explain / --profile: post-run provenance analysis.                *)

module Tree = Pag_core.Tree
module Grammar = Pag_core.Grammar
module Causal = Pag_eval.Causal
module Prov = Pag_obs.Prov

(* Address forms: "root.ATTR", "SYM.ATTR" (first preorder occurrence),
   "SYM#K.ATTR" (K-th occurrence, 0-based), "#ID.ATTR" (preorder id). *)
let resolve_instance g tree addr =
  match String.rindex_opt addr '.' with
  | None -> Error (Printf.sprintf "expected NODE.ATTR, got %S" addr)
  | Some i -> (
      let node_s = String.sub addr 0 i
      and attr = String.sub addr (i + 1) (String.length addr - i - 1) in
      let occurrence sym k =
        let found = ref None and seen = ref 0 in
        Tree.iter
          (fun n ->
            if n.Tree.sym = sym then begin
              if !seen = k && !found = None then found := Some n;
              incr seen
            end)
          tree;
        !found
      in
      let node =
        if node_s = "root" then Some tree
        else if node_s <> "" && node_s.[0] = '#' then
          Option.bind
            (int_of_string_opt (String.sub node_s 1 (String.length node_s - 1)))
            (Tree.find tree)
        else
          match String.index_opt node_s '#' with
          | Some j ->
              Option.bind
                (int_of_string_opt
                   (String.sub node_s (j + 1) (String.length node_s - j - 1)))
                (occurrence (String.sub node_s 0 j))
          | None -> occurrence node_s 0
      in
      match node with
      | None -> Error (Printf.sprintf "no node matches %S" node_s)
      | Some n when n.Tree.prod = None ->
          Error
            (Printf.sprintf "%s is a terminal leaf: its attributes are \
                             intrinsic, no rule fires for them"
               node_s)
      | Some n -> (
          match Grammar.find_attr (Grammar.symbol g n.Tree.sym) attr with
          | None ->
              Error
                (Printf.sprintf "symbol %s declares no attribute %S"
                   n.Tree.sym attr)
          | Some _ ->
              let attr_idx = Grammar.attr_pos g ~sym:n.Tree.sym ~attr in
              Ok (n, attr_idx, Printf.sprintf "%s#%d.%s" n.Tree.sym n.Tree.id attr)))

(* Build the causal DAG from whatever rings recorded anything. *)
let build_dag provs =
  match List.filter (fun (p, _) -> Prov.enabled p) provs with
  | [] -> None
  | provs -> Some (Causal.build provs)

(* Run the requested analyses over the recorded rings. Returns false when
   --explain failed or the explained slice disagrees with the engine's own
   dependency graph (the firing records must agree with the transitive
   producer closure whenever the ring kept everything). *)
let run_provenance ~g ~tree ~dag ~explain ~profile ~profile_json =
  match dag with
  | None ->
      if explain <> None || profile || profile_json <> None then
        Printf.eprintf "pagc: no provenance was recorded for this run\n";
      explain = None
  | Some d ->
    if Causal.dropped d > 0 then
      Printf.eprintf
        "pagc: provenance ring overflowed (%d records dropped): slices and \
         profiles are lower bounds\n"
        (Causal.dropped d);
    if Causal.arg_drops d > 0 then
      Printf.eprintf
        "pagc: %d argument slots exceeded the per-record arity: slices are \
         lower bounds\n"
        (Causal.arg_drops d);
    if profile || profile_json <> None then begin
      let p = Causal.profile d in
      if profile then prerr_string (Causal.render_profile p);
      Option.iter
        (fun path -> write_file path (Causal.profile_json p))
        profile_json
    end;
    match explain with
    | None -> true
    | Some addr -> (
        match resolve_instance g tree addr with
        | Error msg ->
            Printf.eprintf "pagc: --explain: %s\n" msg;
            false
        | Ok (node, attr_idx, name) ->
            let key = Causal.key_of node ~attr_idx in
            if not (Causal.has_key d key) then begin
              Printf.eprintf
                "pagc: --explain: no recorded firing defines %s (intrinsic, \
                 preset, or evicted from the ring)\n"
                name;
              false
            end
            else begin
              print_string (Causal.render_slice d key);
              if Causal.dropped d > 0 then true
              else begin
                (* create_shared keeps the run's node ids, so closure keys
                   line up with the recorded ones *)
                let st = Pag_eval.Store.create_shared g tree in
                let re = Pag_eval.Engine.create g st in
                let gr = Pag_eval.Engine.graph re in
                let missing, extra =
                  Causal.verify_slice d ~ref_engine:re ~ref_graph:gr key
                in
                if missing = [] && extra = [] then true
                else begin
                  Printf.eprintf
                    "pagc: --explain: slice disagrees with the dependency \
                     graph of %s\n"
                    name;
                  List.iter
                    (Printf.eprintf "  missing from slice: %s\n")
                    missing;
                  List.iter (Printf.eprintf "  extra in slice: %s\n") extra;
                  false
                end
              end
            end)

(* Sequential runs have no Runner to assemble the report; build one from
   the single compiler context. *)
let sequential_report obs ~horizon =
  let m = obs.Obs.x_metrics in
  {
    Obs.Report.rp_label = "sequential static, 1 machine";
    rp_clock = "wall clock";
    rp_horizon = horizon;
    rp_machines =
      [
        {
          Obs.Report.rm_pid = 0;
          rm_name = "compiler";
          rm_active = horizon;
          rm_idle = 0.0;
          rm_util = (if horizon > 0.0 then 1.0 else 0.0);
          rm_sends = 0;
          rm_max_queue = -1;
        };
      ];
    rp_dynamic_rules = Obs.Metrics.counter_value m "eval.dynamic_rules";
    rp_static_rules = Obs.Metrics.counter_value m "eval.static_rules";
    rp_messages = 0;
    rp_bytes = 0;
    rp_retransmits = 0;
    rp_metrics = m;
  }

(* --edit-session: keep FILE resident and replay a script of edits against
   it. Each script line names a source file; the session re-parses it,
   re-evaluates only the dirty cone, and prices the distributed update
   wave. The final resident code must match a from-scratch compile of the
   last variant (modulo label numbering). *)
let run_edit_session ~file ~script ~machines ~granularity ~no_librarian
    ~no_priority ~hashcons ~dag ~faults ~out ~batch ~explain ~profile
    ~profile_json =
  let g = Pascal_ag.grammar in
  let parse_tree src = Pascal_ag.tree_of_program g (Parser.parse_program src) in
  let provenance = explain <> None || profile || profile_json <> None in
  let sp =
    Pag_parallel.Session.spec ~granularity ~librarian:(not no_librarian)
      ~priority:(not no_priority) ~hashcons ~dag ?faults
      ~phase_label:Driver.phase_label ~provenance machines
  in
  let base_src = read_file file in
  let es = Pag_parallel.Session.open_session sp g (parse_tree base_src) in
  let edits =
    read_file script |> String.split_on_char '\n' |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  if edits = [] then begin
    Printf.eprintf "pagc: --edit-session: %s lists no edits\n" script;
    exit 1
  end;
  Printf.eprintf "edit session: %s resident on %d machine(s)%s\n" file machines
    (if batch > 1 then Printf.sprintf ", batching %d edits per wave" batch
     else "");
  let last_src = ref base_src in
  if batch <= 1 then
    List.iter
      (fun path ->
        let src = read_file path in
        last_src := src;
        let r = Pag_parallel.Session.edit es (parse_tree src) in
        let open Pag_parallel.Session in
        Printf.eprintf
          "%-24s dirty %4d  refired %4d  cutoff %4d%s  %7d bytes (full \
           recompile %d)  %.4fs%s\n"
          (Filename.basename path) r.er_dirty r.er_refired r.er_cutoff
          (if r.er_fallback then "  [fallback rebuild]" else "")
          r.er_bytes_incr r.er_bytes_full r.er_latency
          (if r.er_retransmits > 0 then
             Printf.sprintf "  (%d retransmits)" r.er_retransmits
           else ""))
      edits
  else begin
    (* batched replay: successive script lines become one merged wave.
       Each line is still a whole-program snapshot, so a chunk's edit set
       is the per-line diff sequence — independent cones merge, edits
       whose cones interfere flush into follow-up waves. *)
    let rec chunks = function
      | [] -> []
      | l ->
          let rec take n = function
            | x :: tl when n > 0 ->
                let h, rest = take (n - 1) tl in
                (x :: h, rest)
            | rest -> ([], rest)
          in
          let h, rest = take batch l in
          h :: chunks rest
    in
    List.iter
      (fun paths ->
        let trees =
          List.map
            (fun path ->
              let src = read_file path in
              last_src := src;
              parse_tree src)
            paths
        in
        let r = Pag_parallel.Session.edit_batch es trees in
        let open Pag_parallel.Session in
        Printf.eprintf
          "%-24s %d edits  waves %d  conflicts %d  dirty %4d  refired %4d  \
           cutoff %4d%s  %7d bytes  %.4fs%s\n"
          (String.concat "," (List.map Filename.basename paths)
          |> fun s ->
          if String.length s > 24 then String.sub s 0 21 ^ "..." else s)
          r.br_edits r.br_waves r.br_conflicts r.br_dirty r.br_refired
          r.br_cutoff
          (if r.br_fallbacks > 0 then
             Printf.sprintf "  [%d fallback rebuilds]" r.br_fallbacks
           else "")
          r.br_bytes r.br_latency
          (if r.br_retransmits > 0 then
             Printf.sprintf "  (%d retransmits)" r.br_retransmits
           else ""))
      (chunks edits)
  end;
  (* --explain / --profile against the live session: the ring holds the
     initial evaluation plus every refire since the last rebuild. *)
  let prov_ok =
    if provenance then
      run_provenance ~g
        ~tree:(Pag_parallel.Session.tree es)
        ~dag:
          (build_dag
             [ (Pag_parallel.Session.prov es, Pag_parallel.Session.engine es) ])
        ~explain ~profile ~profile_json
    else true
  in
  let resident =
    Pascal_ag.code_of_attrs
      (Pag_eval.Store.root_attrs (Pag_parallel.Session.store es))
  in
  let scratch = Driver.compile_source !last_src in
  if
    String.equal
      (Driver.mask_labels resident)
      (Driver.mask_labels scratch.Driver.c_asm)
  then begin
    Printf.eprintf "resident code = from-scratch compile (labels masked): ok\n";
    (match out with
    | Some path -> write_file path resident
    | None -> if explain = None then print_string resident);
    exit (if prov_ok then 0 else 1)
  end
  else begin
    Printf.eprintf "pagc: edit session diverged from a from-scratch compile\n";
    exit 1
  end

(* --serve: drive the multi-tenant compile service from a workload script.
   The script generalizes --edit-session to many resident programs:

     service workers=3 policy=shortest-queue queue-cap=8 mem-cap=0 idle-rounds=0
     tenant alice examples/primes.pas
     edit alice examples/primes_edit1.pas
     round

   `tenant` admits a resident program, `edit` submits a replacement source
   into the tenant's queue (a full queue rejects — backpressure), `round`
   runs one scheduling round; the implicit final drain flushes the rest.
   Afterwards every tenant's resident code must equal a from-scratch
   compile of its last source, modulo label numbering. *)
let run_serve ~script ~machines ~hashcons ~dag ~faults ~transport ~report
    ~batch =
  let module Service = Pag_parallel.Service in
  let g = Pascal_ag.grammar in
  let parse_tree src = Pascal_ag.tree_of_program g (Parser.parse_program src) in
  let fail line msg =
    Printf.eprintf "pagc: --serve: line %d: %s\n" line msg;
    exit 1
  in
  let obs =
    if report then
      let t0 = Unix.gettimeofday () in
      Obs.make_ctx ~pid:0 ~clock:(fun () -> Unix.gettimeofday () -. t0)
    else Obs.null_ctx
  in
  let workers = ref machines
  and policy = ref Service.Round_robin
  and queue_cap = ref 0
  and mem_cap = ref 0
  and idle_rounds = ref 0
  and batch = ref batch
  and net = ref Netsim.Ethernet.default_params in
  let service = ref None in
  let the_service line =
    match !service with
    | Some sv -> sv
    | None ->
        let sv =
          try
            Service.create
              (Service.config ~policy:!policy
                 ~transport:(if transport = "domains" then `Domains else `Sim)
                 ~queue_cap:!queue_cap ~mem_cap:!mem_cap
                 ~idle_rounds:!idle_rounds ~hashcons ~dag ?faults ~net:!net
                 ~obs
                 ~provenance:report ~batch:!batch !workers)
              g
          with Invalid_argument msg -> fail line msg
        in
        service := Some sv;
        sv
  in
  (* last source submitted per tenant, admission order preserved *)
  let last_src : (string, string ref) Hashtbl.t = Hashtbl.create 16 in
  let tenant_order = ref [] in
  let set_kv line kv =
    match String.index_opt kv '=' with
    | None -> fail line (Printf.sprintf "expected key=value, got %S" kv)
    | Some i -> (
        let k = String.sub kv 0 i
        and v = String.sub kv (i + 1) (String.length kv - i - 1) in
        let int_v () =
          match int_of_string_opt v with
          | Some n -> n
          | None -> fail line (Printf.sprintf "%s: not an integer: %S" k v)
        in
        match k with
        | "workers" -> workers := int_v ()
        | "queue-cap" -> queue_cap := int_v ()
        | "mem-cap" -> mem_cap := int_v ()
        | "idle-rounds" -> idle_rounds := int_v ()
        | "batch-edits" -> batch := int_v ()
        | "policy" -> (
            match v with
            | "rr" | "round-robin" -> policy := Service.Round_robin
            | "sq" | "shortest-queue" -> policy := Service.Shortest_queue
            | _ -> fail line (Printf.sprintf "unknown policy %S" v))
        | "net" -> (
            match v with
            | "shared" -> net := Netsim.Ethernet.default_params
            | "switched" -> net := Netsim.Ethernet.switched_params
            | _ -> fail line (Printf.sprintf "unknown net %S" v))
        | _ -> fail line (Printf.sprintf "unknown service key %S" k))
  in
  let lines =
    read_file script |> String.split_on_char '\n' |> List.map String.trim
  in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      if raw <> "" && raw.[0] <> '#' then
        match String.split_on_char ' ' raw |> List.filter (( <> ) "") with
        | "service" :: kvs ->
            if !service <> None then
              fail line "service line must precede the first tenant";
            List.iter (set_kv line) kvs
        | [ "tenant"; name; file ] ->
            let sv = the_service line in
            let src = read_file file in
            (try Service.open_tenant sv name (parse_tree src)
             with Invalid_argument msg -> fail line msg);
            Hashtbl.replace last_src name (ref src);
            tenant_order := name :: !tenant_order
        | [ "edit"; name; file ] -> (
            let sv = the_service line in
            let src = read_file file in
            match
              try Service.submit sv name (parse_tree src)
              with Invalid_argument msg -> fail line msg
            with
            | Service.Admitted -> (Hashtbl.find last_src name) := src
            | Service.Rejected_queue_full ->
                Printf.eprintf "%-12s edit rejected (queue full): %s\n" name
                  (Filename.basename file))
        | [ "round" ] -> Service.run_round (the_service line)
        | _ -> fail line (Printf.sprintf "unrecognized directive %S" raw))
    lines;
  match !service with
  | None ->
      Printf.eprintf "pagc: --serve: %s admits no tenants\n" script;
      exit 1
  | Some sv ->
      Service.drain sv;
      let ok = ref true in
      List.iter
        (fun name ->
          let resident =
            Pascal_ag.code_of_attrs
              (Pag_eval.Store.root_attrs (Service.tenant_store sv name))
          in
          let scratch = Driver.compile_source !(Hashtbl.find last_src name) in
          if
            String.equal
              (Driver.mask_labels resident)
              (Driver.mask_labels scratch.Driver.c_asm)
          then Printf.eprintf "%-12s resident = from-scratch: ok\n" name
          else begin
            Printf.eprintf "%-12s DIVERGED from a from-scratch compile\n" name;
            ok := false
          end)
        (List.rev !tenant_order);
      prerr_string (Service.render (Service.stats sv));
      if report then
        List.iter
          (fun (n, v) -> Printf.eprintf "%-44s %s\n" n v)
          (Obs.Metrics.rows obs.Obs.x_metrics);
      exit (if !ok then 0 else 1)

let run_compiler file machines evaluator schedule transport granularity
    no_librarian no_priority hashcons dag optimize run_it gantt trace_out
    events_out report out input faults fault_seed edit_session serve
    batch_edits explain profile profile_json =
  try
    let faults =
      match faults with
      | None -> None
      | Some plan -> (
          match Netsim.Faults.parse ?seed:fault_seed plan with
          | Ok spec -> Some spec
          | Error msg ->
              Printf.eprintf "pagc: bad --faults plan: %s\n" msg;
              exit 1)
    in
    (match serve with
    | Some script ->
        run_serve ~script ~machines ~hashcons ~dag ~faults ~transport ~report
          ~batch:batch_edits
    | None -> ());
    let file =
      match file with
      | Some f -> f
      | None ->
          Printf.eprintf "pagc: FILE argument required (except with --serve)\n";
          exit 1
    in
    (match edit_session with
    | Some script ->
        run_edit_session ~file ~script ~machines ~granularity ~no_librarian
          ~no_priority ~hashcons ~dag ~faults ~out ~batch:batch_edits ~explain
          ~profile ~profile_json
    | None -> ());
    let src = read_file file in
    let program = Parser.parse_program src in
    let mode = if evaluator = "dynamic" then `Dynamic else `Combined in
    let schedule =
      match schedule with
      | "steal" -> `Steal
      | "dynamic" -> `Dynamic
      | _ -> if mode = `Dynamic then `Dynamic else `Static
    in
    let telemetry = trace_out <> None || events_out <> None || report in
    let provenance = explain <> None || profile || profile_json <> None in
    let compiled, trace_info, obs_data, prov_data =
      if
        machines <= 1 && transport = "sim" && mode = `Combined
        && schedule = `Static && faults = None
      then begin
        let obs =
          if telemetry then begin
            let t0 = Unix.gettimeofday () in
            Obs.make_ctx ~pid:0 ~clock:(fun () -> Unix.gettimeofday () -. t0)
          end
          else Obs.null_ctx
        in
        let ring =
          if provenance then
            Prov.create ~arity:(Causal.arity_for Pascal_ag.grammar) ()
          else Prov.disabled
        in
        let eng = ref None and tree = ref None in
        let compiled =
          Driver.compile ~obs ~hashcons ~dag ~prov:ring
            ~engine_out:(fun e -> eng := Some e)
            ~tree_out:(fun t -> tree := Some t)
            ~evaluator:`Static program
        in
        let obs_data =
          if telemetry then
            let horizon = obs.Obs.x_clock () in
            Some
              ( obs.Obs.x_rec,
                sequential_report obs ~horizon,
                fun _ -> "compiler" )
          else None
        in
        let prov_data =
          match (!eng, !tree) with
          | Some e, Some t when provenance -> Some ([ (ring, e) ], t)
          | _ -> None
        in
        (compiled, None, obs_data, prov_data)
      end
      else begin
        let opts =
          Pag_parallel.Session.options
            (Pag_parallel.Session.spec ~mode ~schedule ~granularity
               ~librarian:(not no_librarian) ~priority:(not no_priority)
               ~hashcons ~dag ~telemetry ?faults
               ~phase_label:Driver.phase_label ~provenance machines)
        in
        let result, compiled =
          if transport = "domains" then
            Driver.compile_parallel_domains opts program
          else Driver.compile_parallel_sim opts program
        in
        let obs_data =
          match result.Pag_parallel.Runner.r_obs with
          | Some rec_ ->
              Some
                ( rec_,
                  result.Pag_parallel.Runner.r_report,
                  Pag_parallel.Runner.machine_name
                    ~fragments:result.Pag_parallel.Runner.r_fragments )
          | None -> None
        in
        let prov_data =
          if provenance then
            Some
              ( result.Pag_parallel.Runner.r_prov,
                result.Pag_parallel.Runner.r_tree )
          else None
        in
        (compiled, Some result, obs_data, prov_data)
      end
    in
    (* The causal DAG is shared by --explain/--profile and the critical-path
       flow arrows merged into --trace. *)
    let dag =
      match prov_data with
      | Some (provs, _) -> build_dag provs
      | None -> None
    in
    (match obs_data with
    | Some (recorder, rep, names) ->
        (* With provenance on, the top critical-path chains ride along as
           flow arrows so the trace viewer draws them across the Gantt
           rows. *)
        let traced =
          match dag with
          | Some d -> Obs.merge [ recorder; Causal.flows d ]
          | None -> recorder
        in
        Option.iter
          (fun path -> write_file path (Export.chrome ~names traced))
          trace_out;
        Option.iter
          (fun path -> write_file path (Export.jsonl ~names recorder))
          events_out;
        if report then prerr_string (Obs.Report.render rep)
    | None ->
        (* Domains transport with telemetry requested but r_obs absent
           cannot happen: telemetry => r_obs on both runners. *)
        ());
    (match trace_info with
    | Some r ->
        Printf.eprintf
          "evaluated on %d fragment(s) in %.3fs (%s), %d messages, %.2f%% \
           dynamic rules\n"
          r.Pag_parallel.Runner.r_fragments r.Pag_parallel.Runner.r_time
          (if transport = "domains" then "wall clock" else "simulated")
          r.Pag_parallel.Runner.r_messages
          (100.0 *. r.Pag_parallel.Runner.r_dynamic_fraction);
        (match r.Pag_parallel.Runner.r_fault_stats with
        | Some fs ->
            Printf.eprintf
              "faults: %d dropped, %d duplicated, %d delayed; %d \
               retransmissions%s\n"
              fs.Netsim.Faults.st_dropped fs.Netsim.Faults.st_duplicated
              fs.Netsim.Faults.st_delayed r.Pag_parallel.Runner.r_retransmits
              (if r.Pag_parallel.Runner.r_recovered then
                 "; coordinator recovered locally"
               else "")
        | None -> ());
        if gantt then (
          match r.Pag_parallel.Runner.r_trace with
          | Some tr ->
              let names =
                Pag_parallel.Runner.machine_name
                  ~fragments:r.Pag_parallel.Runner.r_fragments
              in
              (* With provenance on, star the critical-path firings so the
                 chart lines up with the --profile blame tables. *)
              let top_chain =
                match dag with
                | Some d -> (
                    match (Causal.profile ~top:1 d).Causal.pr_chains with
                    | c :: _ -> c.Causal.ch_steps
                    | [] -> [])
                | None -> []
              in
              let overlay =
                List.map
                  (fun s -> (s.Causal.st_pid, s.Causal.st_t0, s.Causal.st_t1))
                  top_chain
              in
              prerr_string (Netsim.Gantt.render ~overlay ~names tr);
              if top_chain <> [] then begin
                Printf.eprintf "critical path (top chain, * above):\n";
                List.iter
                  (fun s ->
                    Printf.eprintf "  %8.4fs  %-8s %-28s -> %s\n"
                      s.Causal.st_t0 (names s.Causal.st_pid) s.Causal.st_label
                      s.Causal.st_target)
                  top_chain
              end
          | None -> gantt_unavailable ())
    | None -> if gantt then gantt_unavailable ());
    let prov_ok =
      if provenance then
        match prov_data with
        | Some (_, tree) ->
            run_provenance ~g:Pascal_ag.grammar ~tree ~dag ~explain ~profile
              ~profile_json
        | None ->
            Printf.eprintf "pagc: no provenance was recorded for this run\n";
            explain = None
      else true
    in
    if compiled.Driver.c_errors <> [] then begin
      List.iter (Printf.eprintf "error: %s\n") compiled.Driver.c_errors;
      exit 1
    end;
    let compiled = if optimize then Driver.optimize compiled else compiled in
    (match out with
    | Some path ->
        let oc = open_out path in
        output_string oc compiled.Driver.c_asm;
        close_out oc
    | None ->
        (* --explain owns stdout (the slice was printed there). *)
        if not run_it && explain = None then
          print_string compiled.Driver.c_asm);
    if run_it then begin
      match Driver.run_compiled ~input compiled with
      | Ok output -> print_string output
      | Error e ->
          Printf.eprintf "runtime error: %s\n" e;
          exit 2
    end;
    exit (if prov_ok then 0 else 1)
  with
  | Lexer.Lex_error (line, msg) ->
      Printf.eprintf "%s:%d: lexical error: %s\n"
        (Option.value file ~default:"<input>")
        line msg;
      exit 1
  | Parser.Parse_error (line, msg) ->
      Printf.eprintf "%s:%d: syntax error: %s\n"
        (Option.value file ~default:"<input>")
        line msg;
      exit 1
  | Sys_error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1

let file_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"FILE"
        ~doc:"Pascal source file (required except with --serve).")

let machines_arg =
  Arg.(value & opt int 1 & info [ "machines"; "m" ] ~docv:"N" ~doc:"Number of evaluator machines.")

let evaluator_arg =
  Arg.(
    value
    & opt (enum [ ("combined", "combined"); ("dynamic", "dynamic") ]) "combined"
    & info [ "evaluator"; "e" ] ~doc:"Evaluator kind: combined or dynamic.")

let schedule_arg =
  Arg.(
    value
    & opt
        (enum [ ("static", "static"); ("dynamic", "dynamic"); ("steal", "steal") ])
        "static"
    & info [ "schedule" ]
        ~doc:
          "Instance schedule: static = the paper's Split placement \
           (combined or all-dynamic per --evaluator), dynamic = force the \
           all-dynamic classic protocol, steal = work-stealing deques over \
           the unified engine with Split owner-affinity seeding.")

let transport_arg =
  Arg.(
    value
    & opt (enum [ ("sim", "sim"); ("domains", "domains") ]) "sim"
    & info [ "transport" ] ~doc:"sim = network simulator, domains = OCaml multicore.")

let granularity_arg =
  Arg.(
    value & opt float 1.0
    & info [ "granularity"; "g" ]
        ~doc:"Scale factor on the minimum split size (the paper's runtime argument).")

let no_librarian_arg =
  Arg.(value & flag & info [ "no-librarian" ] ~doc:"Disable the string librarian.")

let no_priority_arg =
  Arg.(value & flag & info [ "no-priority" ] ~doc:"Ignore priority attributes.")

let hashcons_arg =
  Arg.(
    value
    & vflag false
        [
          ( true,
            info [ "hashcons" ]
              ~doc:
                "Hash-consed evaluation: repeated subtrees are evaluated \
                 once and replayed; in parallel runs, fragments ship \
                 DAG-compressed and repeated boundary payloads cross the \
                 wire as intern references. Semantics are unchanged." );
          (false, info [ "no-hashcons" ] ~doc:"Disable hash-consed evaluation (default).");
        ])

let dag_arg =
  Arg.(
    value
    & vflag false
        [
          ( true,
            info [ "dag" ]
              ~doc:
                "First-class DAG evaluation: the shared DAG is the \
                 evaluation substrate. One rule-instance set is built per \
                 (repeated-subtree class, inherited context); the other \
                 occurrences carry no instances and receive their \
                 attributes by projection. Fragments ship each class body \
                 once per machine. Rules that allocate unique labels fall \
                 back to per-occurrence evaluation, so semantics are \
                 unchanged up to label numbering. Works on every schedule \
                 and transport; combine with --serve or --edit-session to \
                 keep the sharing across edits." );
          (false, info [ "no-dag" ] ~doc:"Disable DAG evaluation (default).");
        ])

let optimize_arg =
  Arg.(value & flag & info [ "O"; "optimize" ] ~doc:"Apply the peephole optimizer.")

let run_arg =
  Arg.(value & flag & info [ "run" ] ~doc:"Assemble and run on the VAX simulator.")

let gantt_arg =
  Arg.(value & flag & info [ "gantt" ] ~doc:"Print the evaluator activity chart.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"OUT.json"
        ~doc:
          "Write a Chrome trace-event JSON file of the run (one track per \
           machine, message-flow arrows); open in Perfetto or \
           chrome://tracing.")

let events_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "events" ] ~docv:"OUT.jsonl"
        ~doc:"Write the raw telemetry event stream, one JSON object per line.")

let report_arg =
  Arg.(
    value & flag
    & info [ "report" ]
        ~doc:
          "Print the end-of-run evaluation report (per-machine utilization, \
           dynamically evaluated fraction, librarian savings) to stderr.")

let out_arg =
  Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUT" ~doc:"Write assembly to OUT.")

let input_arg =
  Arg.(
    value & opt (list int) []
    & info [ "input" ] ~docv:"INTS" ~doc:"Input integers for read(), comma separated.")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"PLAN"
        ~doc:
          "Inject network faults, e.g. \
           $(b,drop=0.05,dup=0.02,reorder=0.1,delay=0.01\\@0.25,crash=3\\@12.0). \
           Engages reliable delivery and coordinator crash recovery; forces \
           the parallel path even with -m 1.")

let edit_session_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "edit-session" ] ~docv:"SCRIPT"
        ~doc:
          "Keep FILE resident (evaluated and decomposed across the \
           machines) and replay the edits listed in $(docv) — one source \
           file per line, '#' comments allowed. Each edit re-evaluates \
           only its dirty cone and reports the distributed update wave \
           (dirty/refired/cutoff counts, wire bytes vs a full recompile, \
           simulated latency). Prints the final resident assembly after \
           verifying it against a from-scratch compile.")

let serve_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "serve" ] ~docv:"SCRIPT"
        ~doc:
          "Run the multi-tenant compile service on the workload in $(docv): \
           $(b,service) key=value lines configure workers/policy/queue-cap/\
           mem-cap/idle-rounds, $(b,tenant NAME FILE) admits a resident \
           program, $(b,edit NAME FILE) submits a replacement source, \
           $(b,round) runs one scheduling round (a final drain is \
           implicit). --hashcons shares the intern arena across tenants, \
           --faults injects network faults, --transport picks netsim or \
           domains. Exits 0 only if every tenant's resident code matches a \
           from-scratch compile of its last source (labels masked).")

let batch_edits_arg =
  Arg.(
    value & opt int 1
    & info [ "batch-edits" ] ~docv:"N"
        ~doc:
          "Apply up to $(docv) queued edits as one merged re-evaluation \
           wave: independent dirty cones merge and refire together \
           (conflicting edits serialize into follow-up waves), and the \
           distributed update ships one dispatch and one result per wave \
           instead of per edit. Applies to --edit-session (successive \
           script lines become one wave) and --serve (per-tenant chunks; \
           the workload script's $(b,service batch-edits=N) key overrides \
           this flag). Default 1 = one edit at a time.")

let fault_seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fault-seed" ] ~docv:"N"
        ~doc:"PRNG seed for the fault plan (same seed = same fault pattern).")

let explain_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "explain" ] ~docv:"NODE.ATTR"
        ~doc:
          "Record per-firing provenance and print the dependency slice of \
           one attribute instance: every rule firing its final value \
           transitively depends on, with argument values, owning machine \
           and timing. $(docv) addresses the instance as $(b,root.attr), \
           $(b,SYM.attr) (first preorder occurrence of the symbol), \
           $(b,SYM#K.attr) (K-th occurrence, 0-based) or $(b,#ID.attr) \
           (preorder node id). The slice is checked against the engine's \
           own dependency graph; disagreement exits nonzero. Suppresses \
           the assembly on stdout.")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Record per-firing provenance and print the critical-path \
           profile to stderr: the longest chain of dependent rule firings \
           vs the achieved makespan, per-rule and per-machine blame \
           tables, and the ideal-parallel-time lower bound \
           max(critical, work/machines). With --trace, the top chains are \
           drawn as flow arrows across the per-machine tracks.")

let profile_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-json" ] ~docv:"OUT.json"
        ~doc:"Write the critical-path profile as a JSON object to $(docv).")

let cmd =
  let doc = "parallel Pascal-subset compiler by attribute-grammar evaluation" in
  Cmd.v
    (Cmd.info "pagc" ~doc)
    Term.(
      const run_compiler $ file_arg $ machines_arg $ evaluator_arg
      $ schedule_arg $ transport_arg $ granularity_arg $ no_librarian_arg $ no_priority_arg
      $ hashcons_arg $ dag_arg $ optimize_arg $ run_arg $ gantt_arg
      $ trace_arg
      $ events_arg $ report_arg $ out_arg $ input_arg $ faults_arg
      $ fault_seed_arg $ edit_session_arg $ serve_arg $ batch_edits_arg
      $ explain_arg $ profile_arg $ profile_json_arg)

let () = exit (Cmd.eval cmd)
