open Pag_core
open Pag_util
open Pag_obs

let splice_cost_per_byte = 0.05e-6

let run ?(obs = Obs.null_ctx) (env : Transport.env) ~coordinator =
  let frags : (int, Rope.t) Hashtbl.t = Hashtbl.create 32 in
  let frag_bytes = ref 0 in
  let pending : Codestr.t option ref = ref None in
  (* Each code attribute is assembled and sent exactly once, even if the
     Resolve request is replayed (retransmission, network duplication). *)
  let finals_sent = ref 0 in
  let have_all desc =
    let complete = ref true in
    (try
       ignore
         (Codestr.resolve
            ~lookup:(fun id ->
              if Hashtbl.mem frags id then Rope.empty
              else raise (Codestr.Unresolved id))
            desc)
     with Codestr.Unresolved _ -> complete := false);
    !complete
  in
  (* The resolve request may overtake fragments still in flight; assemble as
     soon as every referenced fragment is present. *)
  let try_finish () =
    match !pending with
    | Some desc when have_all desc ->
        let text = Codestr.resolve ~lookup:(Hashtbl.find frags) desc in
        env.Transport.e_delay
          (float_of_int (Rope.length text) *. splice_cost_per_byte);
        env.Transport.e_send ~dst:coordinator (Message.Final { text });
        incr finals_sent;
        if Obs.ctx_enabled obs then
          Obs.instant obs.Obs.x_rec ~pid:obs.Obs.x_pid ~t:(obs.Obs.x_clock ())
            (Printf.sprintf "final assembled (%d bytes)" (Rope.length text));
        pending := None
    | _ -> ()
  in
  let rec loop () =
    match env.Transport.e_recv () with
    | Message.Code_frag { id; text } ->
        (* Duplicate fragments replace an identical binding: harmless. *)
        if not (Hashtbl.mem frags id) then
          frag_bytes := !frag_bytes + Rope.length text;
        Hashtbl.replace frags id text;
        try_finish ();
        loop ()
    | Message.Resolve { value } ->
        if !finals_sent = 0 then begin
          pending := Some (Codestr.of_value ~ctx:"librarian" value);
          try_finish ()
        end;
        loop ()
    | Message.Stop -> ()
    | other ->
        failwith
          (Format.asprintf "librarian: unexpected message %a" Message.pp other)
  in
  loop ();
  if Obs.ctx_enabled obs then begin
    let reg = obs.Obs.x_metrics in
    Obs.Metrics.add_gauge reg "librarian.bytes" (float_of_int !frag_bytes);
    Obs.Metrics.add_gauge reg "librarian.fragments"
      (float_of_int (Hashtbl.length frags))
  end;
  env.Transport.e_flush ()
