(** Pretty-printer for the Pascal subset: emits source text that the lexer
    and parser accept, so [parse (to_string p)] round-trips. Used to size
    generated workloads in source lines and to debug the program generator. *)

val program_to_string : Ast.program -> string

val line_count : Ast.program -> int
