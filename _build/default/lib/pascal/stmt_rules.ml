(* Semantic rules for statements, case arms, and argument lists of the
   Pascal attribute grammar. See Pascal_ag for the overall design. *)

open Pag_core
open Ast
open Ag_dsl
open Vax.Isa

let aty = Pvalue.as_ty

(* Variable entry for the for-loop induction variable; a dummy keeps code
   generation total on erroneous programs (errors are reported separately
   and erroneous code is never run). *)
let var_info_of ~ctx envv name =
  match lookup_env ~ctx envv name with
  | Some v -> (
      match Pvalue.as_info ~ctx v with
      | Pvalue.IVar _ as i -> Some i
      | Pvalue.IConst _ | Pvalue.IRoutine _ -> None)
  | None -> None

let dummy_var = Pvalue.IVar { ty = TInt; level = 1; offset = -4; by_ref = false }

let store_top_into_addr =
  (* stack: [...; value; addr] -> store value at addr *)
  [ Movl (PostInc sp, Reg r0); Movl (PostInc sp, Deref r0) ]

let specs : prod_spec list =
  let open Grammar in
  [
    (* ---------------- assignment ---------------- *)
    prod "s_assign" "stmt" [ "lvalue"; "expr" ]
      (down [ 1; 2 ]
      @ [
          r (lhs "code")
            [ rhs 2 "code"; rhs 1 "acode" ]
            (fun args ->
              code
                (Cg.cconcat
                   [
                     as_code ~ctx:"assign" args.(0);
                     as_code ~ctx:"assign" args.(1);
                     Cg.asm store_top_into_addr;
                   ]));
          errs_up [ 1; 2 ]
            ~extra:[ rhs 1 "ty"; rhs 2 "ty"; rhs 1 "writable" ]
            ~extra_fn:(fun args ->
              let lty = aty ~ctx:"assign" args.(2) in
              let rty = aty ~ctx:"assign" args.(3) in
              let writable = as_bool ~ctx:"assign" args.(4) in
              (if writable then [] else [ "assignment to a non-variable" ])
              @ (if Ast.is_scalar lty then []
                 else [ "assignment to a composite value" ])
              @ want_ty "assignment" lty rty);
        ]);
    (* ---------------- if / while / repeat ---------------- *)
    prod ~labels:2 "s_if" "stmt" [ "expr"; "stmts"; "stmts" ]
      (down [ 1; 2; 3 ]
      @ [
          rl (lhs "code")
            [ rhs 1 "code"; rhs 2 "code"; rhs 3 "code" ]
            (fun ~labels args ->
              let l_else = Cg.lab labels.(0) and l_end = Cg.lab labels.(1) in
              code
                (Cg.cconcat
                   [
                     as_code ~ctx:"if" args.(0);
                     Cg.asm [ Tstl (PostInc sp); Beql l_else ];
                     as_code ~ctx:"if" args.(1);
                     Cg.asm [ Brb l_end; Label l_else ];
                     as_code ~ctx:"if" args.(2);
                     Cg.asm [ Label l_end ];
                   ]));
          errs_up [ 1; 2; 3 ] ~extra:[ rhs 1 "ty" ] ~extra_fn:(fun args ->
              want_ty "if condition" TBool (aty ~ctx:"if" args.(3)));
        ]);
    prod ~labels:2 "s_while" "stmt" [ "expr"; "stmts" ]
      (down [ 1; 2 ]
      @ [
          rl (lhs "code")
            [ rhs 1 "code"; rhs 2 "code" ]
            (fun ~labels args ->
              let l_top = Cg.lab labels.(0) and l_end = Cg.lab labels.(1) in
              code
                (Cg.cconcat
                   [
                     Cg.asm [ Label l_top ];
                     as_code ~ctx:"while" args.(0);
                     Cg.asm [ Tstl (PostInc sp); Beql l_end ];
                     as_code ~ctx:"while" args.(1);
                     Cg.asm [ Brb l_top; Label l_end ];
                   ]));
          errs_up [ 1; 2 ] ~extra:[ rhs 1 "ty" ] ~extra_fn:(fun args ->
              want_ty "while condition" TBool (aty ~ctx:"while" args.(2)));
        ]);
    prod ~labels:1 "s_repeat" "stmt" [ "stmts"; "expr" ]
      (down [ 1; 2 ]
      @ [
          rl (lhs "code")
            [ rhs 1 "code"; rhs 2 "code" ]
            (fun ~labels args ->
              let l_top = Cg.lab labels.(0) in
              code
                (Cg.cconcat
                   [
                     Cg.asm [ Label l_top ];
                     as_code ~ctx:"repeat" args.(0);
                     as_code ~ctx:"repeat" args.(1);
                     Cg.asm [ Tstl (PostInc sp); Beql l_top ];
                   ]));
          errs_up [ 1; 2 ] ~extra:[ rhs 2 "ty" ] ~extra_fn:(fun args ->
              want_ty "until condition" TBool (aty ~ctx:"repeat" args.(2)));
        ]);
    (* ---------------- for loops ---------------- *)
  ]
  @ (let for_loop pname up =
       let open Grammar in
       prod ~labels:2 pname "stmt" [ "ID"; "expr"; "expr"; "stmts" ]
         (down [ 2; 3; 4 ]
         @ [
             rl (lhs "code")
               [
                 lhs "env"; lhs "level"; rhs 1 "name"; rhs 2 "code";
                 rhs 3 "code"; rhs 4 "code";
               ]
               (fun ~labels args ->
                 let l_top = Cg.lab labels.(0) and l_end = Cg.lab labels.(1) in
                 let cur = as_int ~ctx:"for" args.(1) in
                 let name = as_str ~ctx:"for" args.(2) in
                 let info =
                   Option.value ~default:dummy_var
                     (var_info_of ~ctx:"for" args.(0) name)
                 in
                 let push_addr = Cg.push_var_addr ~cur ~v:info in
                 code
                   (Cg.cconcat
                      [
                        as_code ~ctx:"for" args.(4) (* limit stays on stack *);
                        as_code ~ctx:"for" args.(3) (* initial value *);
                        Cg.asm push_addr;
                        Cg.asm store_top_into_addr;
                        Cg.asm [ Label l_top ];
                        Cg.asm push_addr;
                        Cg.asm Cg.deref_top;
                        Cg.asm
                          [
                            Movl (PostInc sp, Reg r0);
                            Cmpl (Reg r0, Deref sp);
                            (if up then Bgtr l_end else Blss l_end);
                          ];
                        as_code ~ctx:"for" args.(5);
                        Cg.asm push_addr;
                        Cg.asm
                          [
                            Movl (PostInc sp, Reg r0);
                            (if up then Addl2 (Imm 1, Deref r0)
                             else Subl2 (Imm 1, Deref r0));
                            Brb l_top;
                            Label l_end;
                            Addl2 (Imm 4, Reg sp) (* discard the limit *);
                          ];
                      ]));
             errs_up [ 2; 3; 4 ]
               ~extra:[ lhs "env"; rhs 1 "name"; rhs 2 "ty"; rhs 3 "ty" ]
               ~extra_fn:(fun args ->
                 let name = as_str ~ctx:"for" args.(4) in
                 (match var_info_of ~ctx:"for" args.(3) name with
                 | Some (Pvalue.IVar { ty = TInt; by_ref = false; _ }) -> []
                 | Some _ ->
                     [ Printf.sprintf "for variable %s must be an integer variable" name ]
                 | None -> [ Printf.sprintf "unknown for variable %s" name ])
                 @ want_ty "for initial value" TInt (aty ~ctx:"for" args.(5))
                 @ want_ty "for limit" TInt (aty ~ctx:"for" args.(6)));
           ])
     in
     [ for_loop "s_for_up" true; for_loop "s_for_down" false ])
  @ [
      (* ---------------- case ---------------- *)
      prod "s_case" "stmt" [ "newlab"; "expr"; "cases"; "optelse" ]
        (down [ 2; 3; 4 ]
        @ [
            r (Grammar.rhs 3 "endlab") [ Grammar.rhs 1 "lab" ] id;
            r (Grammar.lhs "code")
              [
                Grammar.rhs 1 "lab"; Grammar.rhs 2 "code";
                Grammar.rhs 3 "dispatch"; Grammar.rhs 4 "code";
                Grammar.rhs 3 "bodies";
              ]
              (fun args ->
                let l_end = as_str ~ctx:"case" args.(0) in
                code
                  (Cg.cconcat
                     [
                       as_code ~ctx:"case" args.(1);
                       Cg.asm [ Movl (PostInc sp, Reg r0) ];
                       as_code ~ctx:"case" args.(2);
                       as_code ~ctx:"case" args.(3);
                       Cg.asm [ Brb l_end ];
                       as_code ~ctx:"case" args.(4);
                       Cg.asm [ Label l_end ];
                     ]));
            errs_up [ 3; 4 ] ~extra:[ Grammar.rhs 2 "ty"; Grammar.rhs 2 "errs" ]
              ~extra_fn:(fun args ->
                want_ty "case selector" TInt (aty ~ctx:"case" args.(2))
                @ as_errs ~ctx:"case" args.(3));
          ]);
      prod "cases_nil" "cases" []
        [
          r (Grammar.lhs "dispatch") [] (fun _ -> code Cg.empty);
          r (Grammar.lhs "bodies") [] (fun _ -> code Cg.empty);
          r (Grammar.lhs "errs") [] (fun _ -> v_list []);
        ];
      prod "cases_cons" "cases" [ "cases"; "case1" ]
        (down [ 1; 2 ]
        @ [
            r (Grammar.rhs 1 "endlab") [ Grammar.lhs "endlab" ] id;
            r (Grammar.rhs 2 "endlab") [ Grammar.lhs "endlab" ] id;
            r (Grammar.lhs "dispatch")
              [ Grammar.rhs 1 "dispatch"; Grammar.rhs 2 "dispatch" ]
              (fun args ->
                code
                  (Cg.( ^^ )
                     (as_code ~ctx:"cases" args.(0))
                     (as_code ~ctx:"cases" args.(1))));
            r (Grammar.lhs "bodies")
              [ Grammar.rhs 1 "bodies"; Grammar.rhs 2 "bodies" ]
              (fun args ->
                code
                  (Cg.( ^^ )
                     (as_code ~ctx:"cases" args.(0))
                     (as_code ~ctx:"cases" args.(1))));
            errs_up [ 1; 2 ];
          ]);
      prod "case1" "case1" [ "newlab"; "consts"; "stmts" ]
        (down [ 3 ]
        @ [
            r (Grammar.rhs 2 "armlab") [ Grammar.rhs 1 "lab" ] id;
            r (Grammar.lhs "dispatch") [ Grammar.rhs 2 "code" ] id;
            r (Grammar.lhs "bodies")
              [ Grammar.rhs 1 "lab"; Grammar.rhs 3 "code"; Grammar.lhs "endlab" ]
              (fun args ->
                code
                  (Cg.cconcat
                     [
                       Cg.asm [ Label (as_str ~ctx:"arm" args.(0)) ];
                       as_code ~ctx:"arm" args.(1);
                       Cg.asm [ Brb (as_str ~ctx:"arm" args.(2)) ];
                     ]));
            errs_up [ 3 ];
          ]);
      prod "optelse_none" "optelse" []
        [
          r (Grammar.lhs "code") [] (fun _ -> code Cg.empty);
          r (Grammar.lhs "errs") [] (fun _ -> v_list []);
        ];
      prod "optelse_some" "optelse" [ "stmts" ]
        (down [ 1 ]
        @ [ r (Grammar.lhs "code") [ Grammar.rhs 1 "code" ] id; errs_up [ 1 ] ]);
      prod "consts_one" "consts" [ "NUMT" ]
        [
          r (Grammar.lhs "code")
            [ Grammar.lhs "armlab"; Grammar.rhs 1 "value" ]
            (fun args ->
              code
                (Cg.asm
                   [
                     Cmpl (Reg r0, Imm (as_int ~ctx:"consts" args.(1)));
                     Beql (as_str ~ctx:"consts" args.(0));
                   ]));
        ];
      prod "consts_cons" "consts" [ "consts"; "NUMT" ]
        [
          r (Grammar.rhs 1 "armlab") [ Grammar.lhs "armlab" ] id;
          r (Grammar.lhs "code")
            [ Grammar.rhs 1 "code"; Grammar.lhs "armlab"; Grammar.rhs 2 "value" ]
            (fun args ->
              code
                (Cg.( ^^ )
                   (as_code ~ctx:"consts" args.(0))
                   (Cg.asm
                      [
                        Cmpl (Reg r0, Imm (as_int ~ctx:"consts" args.(2)));
                        Beql (as_str ~ctx:"consts" args.(1));
                      ])));
        ];
      (* ---------------- calls ---------------- *)
      prod "s_call" "stmt" [ "ID"; "args" ]
        (down [ 2 ]
        @ [
            r (Grammar.rhs 2 "psig")
              [ Grammar.lhs "env"; Grammar.rhs 1 "name" ]
              (fun args ->
                match lookup_env ~ctx:"call" args.(0) (as_str ~ctx:"call" args.(1)) with
                | Some v -> (
                    match Pvalue.as_info ~ctx:"call" v with
                    | Pvalue.IRoutine rt -> psig_value rt.params
                    | _ -> v_list [])
                | None -> v_list []);
            r (Grammar.lhs "code")
              [
                Grammar.lhs "env"; Grammar.lhs "level"; Grammar.rhs 1 "name";
                Grammar.rhs 2 "code";
              ]
              (fun args ->
                let name = as_str ~ctx:"call" args.(2) in
                match lookup_env ~ctx:"call" args.(0) name with
                | Some v -> (
                    match Pvalue.as_info ~ctx:"call" v with
                    | Pvalue.IRoutine rt ->
                        let cur = as_int ~ctx:"call" args.(1) in
                        code
                          (Cg.cconcat
                             [
                               as_code ~ctx:"call" args.(3);
                               Cg.asm (Cg.push_static_link ~cur ~target:rt.level);
                               Cg.asm
                                 [ Calls (List.length rt.params + 1, rt.label) ];
                             ])
                    | _ -> code Cg.empty)
                | None -> code Cg.empty);
            errs_up [ 2 ]
              ~extra:[ Grammar.lhs "env"; Grammar.rhs 1 "name"; Grammar.rhs 2 "tys" ]
              ~extra_fn:(fun args ->
                let name = as_str ~ctx:"call" args.(2) in
                match lookup_env ~ctx:"call" args.(1) name with
                | Some v -> (
                    match Pvalue.as_info ~ctx:"call" v with
                    | Pvalue.IRoutine rt ->
                        let tys = tys_of_value ~ctx:"call" args.(3) in
                        if List.length tys <> List.length rt.params then
                          [
                            Printf.sprintf "%s expects %d arguments, got %d" name
                              (List.length rt.params) (List.length tys);
                          ]
                        else
                          List.concat
                            (List.map2
                               (fun (pt, _) at ->
                                 want_ty (Printf.sprintf "argument of %s" name) pt at)
                               rt.params tys)
                    | _ -> [ Printf.sprintf "%s is not a procedure" name ])
                | None -> [ Printf.sprintf "unknown procedure %s" name ]);
          ]);
      prod "args_nil" "args"
        []
        [
          r (Grammar.lhs "code") [] (fun _ -> code Cg.empty);
          r (Grammar.lhs "tys") [] (fun _ -> v_list []);
          r (Grammar.lhs "errs") [] (fun _ -> v_list []);
        ];
      prod "args_cons" "args" [ "expr"; "args" ]
        (down [ 1; 2 ]
        @ [
            r (Grammar.rhs 2 "psig") [ Grammar.lhs "psig" ] (fun args ->
                match as_list ~ctx:"args" args.(0) with
                | [] -> v_list []
                | _ :: rest -> v_list rest);
            r (Grammar.lhs "code")
              [
                Grammar.lhs "psig"; Grammar.rhs 1 "code"; Grammar.rhs 1 "addr";
                Grammar.rhs 2 "code";
              ]
              (fun args ->
                let by_ref =
                  match psig_of_value ~ctx:"args" args.(0) with
                  | (_, b) :: _ -> b
                  | [] -> false
                in
                let this =
                  if by_ref then begin
                    let is_lval, acode = Value.as_pair ~ctx:"args" args.(2) in
                    if as_bool ~ctx:"args" is_lval then as_code ~ctx:"args" acode
                    else Cg.asm [ Pushl (Imm 0) ]
                  end
                  else as_code ~ctx:"args" args.(1)
                in
                (* arguments are evaluated and pushed left to right; the
                   callee's parameter offsets account for the order *)
                code (Cg.( ^^ ) this (as_code ~ctx:"args" args.(3))));
            r (Grammar.lhs "tys")
              [ Grammar.rhs 1 "ty"; Grammar.rhs 2 "tys" ]
              (fun args -> v_list (args.(0) :: as_list ~ctx:"args" args.(1)));
            errs_up [ 1; 2 ]
              ~extra:[ Grammar.lhs "psig"; Grammar.rhs 1 "addr" ]
              ~extra_fn:(fun args ->
                let by_ref =
                  match psig_of_value ~ctx:"args" args.(2) with
                  | (_, b) :: _ -> b
                  | [] -> false
                in
                let is_lval, _ = Value.as_pair ~ctx:"args" args.(3) in
                if by_ref && not (as_bool ~ctx:"args" is_lval) then
                  [ "var argument must be a variable" ]
                else []);
          ]);
      (* ---------------- write / read ---------------- *)
      prod "s_write" "stmt" [ "wargs" ]
        (down [ 1 ]
        @ [ r (Grammar.lhs "code") [ Grammar.rhs 1 "code" ] id; errs_up [ 1 ] ]);
      prod "s_writeln" "stmt" [ "wargs" ]
        (down [ 1 ]
        @ [
            r (Grammar.lhs "code")
              [ Grammar.rhs 1 "code" ]
              (fun args ->
                code
                  (Cg.( ^^ )
                     (as_code ~ctx:"writeln" args.(0))
                     (Cg.asm [ Pushl (Imm 10); Calls (1, "_print_char") ])));
            errs_up [ 1 ];
          ]);
      prod "wargs_nil" "wargs" []
        [
          r (Grammar.lhs "code") [] (fun _ -> code Cg.empty);
          r (Grammar.lhs "errs") [] (fun _ -> v_list []);
        ];
      prod "wargs_cons" "wargs" [ "expr"; "wargs" ]
        (down [ 1; 2 ]
        @ [
            r (Grammar.lhs "code")
              [ Grammar.rhs 1 "code"; Grammar.rhs 1 "ty"; Grammar.rhs 2 "code" ]
              (fun args ->
                code
                  (Cg.cconcat
                     [
                       as_code ~ctx:"write" args.(0);
                       Cg.asm (Cg.print_call (aty ~ctx:"write" args.(1)));
                       as_code ~ctx:"write" args.(2);
                     ]));
            errs_up [ 1; 2 ] ~extra:[ Grammar.rhs 1 "ty" ] ~extra_fn:(fun args ->
                if Ast.is_scalar (aty ~ctx:"write" args.(2)) then []
                else [ "write of a composite value" ]);
          ]);
      prod "s_read" "stmt" [ "lvalue" ]
        (down [ 1 ]
        @ [
            r (Grammar.lhs "code")
              [ Grammar.rhs 1 "acode" ]
              (fun args ->
                code
                  (Cg.( ^^ )
                     (as_code ~ctx:"read" args.(0))
                     (Cg.asm
                        [
                          Calls (0, "_read_int");
                          Movl (PostInc sp, Reg r1);
                          Movl (Reg r0, Deref r1);
                        ])));
            errs_up [ 1 ]
              ~extra:[ Grammar.rhs 1 "ty"; Grammar.rhs 1 "writable" ]
              ~extra_fn:(fun args ->
                (if as_bool ~ctx:"read" args.(2) then []
                 else [ "read into a non-variable" ])
                @ want_ty "read" TInt (aty ~ctx:"read" args.(1)));
          ]);
    ]
