(** VAX-subset simulator.

    Executes assembled programs so that compiled Pascal can be run and its
    observable output compared with the reference interpreter. Longword
    machine: every access is a 4-byte word at a 4-aligned byte address.

    Call convention (simplified CALLS/RET):
    - the caller pushes arguments right to left, then [calls $n, L];
    - [calls] pushes the argument count, the return address, the old [fp]
      and the old [ap]; then [fp := sp], [ap := fp + 12] (so [0(ap)] is the
      argument count and [4(ap)] the first argument), and control transfers;
    - [ret] unwinds all of that and pops the arguments;
    - function results are returned in [r0].

    Runtime routines intercepted by name (the compiler "links" against
    them): [_print_int] (one arg, decimal + newline), [_print_char],
    [_print_bool] ("true"/"false" + newline), [_read_int] (next value from
    the input list in [r0]). *)

type outcome = {
  output : string;
  steps : int;  (** instructions executed *)
}

type error =
  | Unknown_label of string
  | Fuel_exhausted
  | Memory_fault of int  (** offending byte address *)
  | Divide_by_zero
  | No_input
  | Bad_operand of string

exception Fault of error

val error_to_string : error -> string

(** [run ?fuel ?input instrs] loads and executes from the first instruction
    until [halt]. Default fuel 10 million instructions. *)
val run : ?fuel:int -> ?input:int list -> Isa.instr list -> (outcome, error) result

(** Convenience: parse assembly text and run it. *)
val run_text : ?fuel:int -> ?input:int list -> string -> (outcome, error) result
