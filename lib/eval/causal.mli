(** Post-run provenance analysis: causal slices and the critical-path
    profile.

    {!build} materializes the firing records of one or more {!Pag_obs.Prov}
    rings (one per machine/domain, or a single ring for sequential runs)
    into a DAG over attribute instances. Instances are keyed globally by
    [(node preorder id, attribute index)] — node ids are shared across the
    fragment stores of a parallel run, so cross-machine dependencies link
    up even though slot ids are store-local.

    Two analyses ship on top: the {e dependency slice} of one instance
    ([pagc --explain]) — every recorded firing its final value transitively
    depends on, with argument values, owning machine and timing — and the
    {e weighted critical path} ([pagc --profile]) — the longest chain of
    dependent firings, compared against the achieved makespan, with
    per-rule and per-machine blame tables and an ideal-parallel-time lower
    bound [max(critical, work/machines)]. *)

open Pag_core

type t

(** [build sources] — each source pairs a ring with the engine whose
    firings it recorded (the engine resolves slot ids and rule names).
    Pass one pair per machine; rings record rid/pid/slots only, so a
    shared engine may appear in several pairs (the domains steal
    schedule). *)
val build : (Pag_obs.Prov.t * Engine.t) list -> t

(** Firing records materialized (survivors of every ring). *)
val firings : t -> int

(** Records evicted by ring overflow, summed over sources — when nonzero,
    slices and profiles are lower bounds. *)
val dropped : t -> int

(** Argument slots dropped by per-record arity overflow. *)
val arg_drops : t -> int

(** Global key of an attribute instance. *)
val key_of : Tree.t -> attr_idx:int -> int

(** Per-record argument capacity ({!Pag_obs.Prov.create}'s [arity]) that
    guarantees no slot argument of any of [g]'s rules is dropped — the
    widest rule dependency list, floored at 8. Every ring creation should
    pass it: a truncated argument list silently under-reports slices. *)
val arity_for : Grammar.t -> int

(** Does any recorded firing define this key? *)
val has_key : t -> int -> bool

(** {1 Dependency slice} *)

(** Distinct instance keys the final value of [key] transitively depends
    on (including [key] itself when a firing defines it), sorted. Keys
    never defined by a recorded firing (intrinsic terminal attributes,
    preset root attributes) do not appear. *)
val slice_keys : t -> int -> int list

(** Human-readable slice: one line per firing in chronological order —
    machine, time window, rule, target instance and value, argument
    values. [~] marks memo-replayed (zero-duration) firings. *)
val render_slice : t -> int -> string

(** {1 Verification}

    The slice must agree with the engine's own dependency graph: the
    transitive producer closure. [pagc --explain] checks this and exits
    nonzero on disagreement; the qcheck property in [test_causal] does the
    same across schedules. *)

(** Transitive producer closure of [key] over a reference engine's
    dependency graph (keys of all rule-defined instances reached). Build
    the reference on the {e run's} tree with {!Store.create_shared} so
    node ids agree. *)
val closure_keys : Engine.t -> Engine.graph -> int -> int list

(** [(missing, extra)] — instance names in the closure but not the slice,
    and vice versa. Both empty iff the slice is exact. *)
val verify_slice :
  t -> ref_engine:Engine.t -> ref_graph:Engine.graph -> int -> string list * string list

(** {1 Critical path} *)

type step = {
  st_label : string;  (** production:rule *)
  st_target : string;  (** SYM#id.attr *)
  st_pid : int;
  st_t0 : float;
  st_t1 : float;
  st_replay : bool;
}

type chain = { ch_len : float; ch_steps : step list }

type profile = {
  pr_firings : int;
  pr_replays : int;
  pr_dropped : int;
  pr_machines : int;  (** distinct pids observed *)
  pr_makespan : float;  (** last t1 - first t0 *)
  pr_work : float;  (** sum of firing durations *)
  pr_critical : float;  (** weighted longest dependent chain *)
  pr_ideal : float;  (** max(critical, work/machines) *)
  pr_rule_blame : (string * int * float) list;
      (** rule label, firings, time — on the top chain, largest first *)
  pr_machine_blame : (int * int * float) list;
      (** pid, firings, time — on the top chain *)
  pr_chains : chain list;  (** top chains, firing-disjoint, longest first *)
}

(** [profile ?top d] — [top] (default 3) chains are reported; the blame
    tables cover the first. Invariant (schedules price firing durations
    consistently): [pr_critical <= pr_makespan] up to clock noise. *)
val profile : ?top:int -> t -> profile

val render_profile : profile -> string

(** One-line JSON object (the CI artifact / [--profile-json] payload). *)
val profile_json : profile -> string

(** Flow arrows along the top [top] chains, as an {!Pag_obs.Obs} recorder
    to merge into a trace export — Chrome's trace viewer then draws the
    critical path across the per-machine Gantt rows. *)
val flows : ?top:int -> t -> Pag_obs.Obs.recorder
