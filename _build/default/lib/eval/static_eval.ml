open Pag_core
open Pag_analysis

type stats = { visits : int; evals : int }

let visit plan store node v =
  let visits = ref 0 and evals = ref 0 in
  let rec go node v =
    match node.Tree.prod with
    | None -> ()
    | Some p ->
        incr visits;
        List.iter
          (function
            | Kastens.Eval r ->
                ignore (Store.apply_rule store node p.Grammar.p_rules.(r));
                incr evals
            | Kastens.Visit { child; visit } ->
                go node.Tree.children.(child) visit)
          (Kastens.visit_seq plan ~prod:p.Grammar.p_id ~visit:v)
  in
  go node v;
  (!visits, !evals)

let eval ?root_inh plan t =
  let r, _ =
    Uid.with_base 0 (fun () ->
        let g = Kastens.grammar plan in
        let store = Store.create ?root_inh g t in
        let m = Kastens.visit_count plan t.Tree.sym in
        let visits = ref 0 and evals = ref 0 in
        for v = 1 to m do
          let nv, ne = visit plan store t v in
          visits := !visits + nv;
          evals := !evals + ne
        done;
        (store, { visits = !visits; evals = !evals }))
  in
  r
