lib/eval/static_eval.mli: Kastens Pag_analysis Pag_core Store Tree Value
