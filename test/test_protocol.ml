(* Failure injection on the parallel protocol: malformed message sequences
   must surface as protocol errors, not hangs or silent corruption. *)

open Pag_core
open Pag_parallel
open Pag_grammars

module S = Netsim.Sim.Make (struct
  type msg = Message.t
end)

let check_bool = Alcotest.(check bool)

let plan =
  lazy
    (match Pag_analysis.Kastens.analyze Stackcode_ag.grammar with
    | Ok p -> p
    | Error _ -> assert false)

let worker_config () =
  {
    Worker.wc_grammar = Stackcode_ag.grammar;
    wc_plan = Some (Lazy.force plan);
    wc_mode = `Combined;
    wc_cost = Cost.default;
    wc_use_priority = true;
    wc_librarian = None;
    wc_phase_label = (fun _ -> None);
    wc_obs = Pag_obs.Obs.null_ctx;
    wc_sharing = None;
    wc_prov = Pag_obs.Prov.disabled;
    wc_prov_dwell = true;
    wc_engine_hook = ignore;
  }

let simple_task () =
  let tree = Stackcode_ag.main (Stackcode_ag.num 1) in
  ignore (Tree.number tree);
  {
    Worker.t_frag_id = 0;
    t_root = tree;
    t_cuts = [];
    t_parent_machine = 0;
    t_root_is_tree_root = true;
  }

let env_of _sim id =
  {
    Transport.e_id = id;
    e_delay = S.delay;
    e_send = (fun ~dst m -> S.send ~dst ~size:(Message.size m) m);
    e_recv = S.recv;
    e_recv_timeout = S.recv_timeout;
    e_time = S.time;
    e_mark = (fun _ -> ());
    e_flush = (fun () -> ());
  }

(* Run a worker against a scripted coordinator; return the worker's error. *)
let run_scripted script =
  let sim = S.create () in
  let failure = ref None in
  let _coord = S.spawn sim ~name:"coord" (fun () -> script (env_of sim 0)) in
  let _worker =
    S.spawn sim ~name:"worker" (fun () ->
        match Worker.run (env_of sim 1) (worker_config ()) (simple_task ()) with
        | _ -> ()
        | exception Worker.Stuck msg -> failure := Some msg)
  in
  (try S.run sim with S.Deadlock _ -> failure := Some "deadlock");
  !failure

let test_normal_protocol () =
  (* coordinator sends the assignment and collects the root attributes *)
  let got = ref [] in
  let failure =
    run_scripted (fun env ->
        env.Transport.e_send ~dst:1
          (Message.Subtree { frag = 0; bytes = 100; uid_base = Uid.stride });
        (* main_expr has syn value + code *)
        for _ = 1 to 2 do
          match env.Transport.e_recv () with
          | Message.Attr { attr; _ } -> got := attr :: !got
          | _ -> ()
        done)
  in
  check_bool "no failure" true (failure = None);
  check_bool "received value and code" true
    (List.sort compare !got = [ "code"; "value" ])

let test_unexpected_message_kind () =
  let failure =
    run_scripted (fun env ->
        env.Transport.e_send ~dst:1
          (Message.Subtree { frag = 0; bytes = 100; uid_base = Uid.stride });
        (* inject garbage mid-evaluation *)
        env.Transport.e_send ~dst:1 Message.Stop;
        for _ = 1 to 2 do
          ignore (env.Transport.e_recv ())
        done)
  in
  (* worker finishes before the Stop arrives (it never has to wait), or
     reports it as unexpected — both acceptable; what must not happen is a
     hang or corruption. Accept either outcome deterministically: *)
  check_bool "no deadlock" true (failure <> Some "deadlock")

let test_attr_for_unknown_node () =
  (* a stray attribute arriving BEFORE the assignment is stashed and must
     be rejected when the worker replays it after setup *)
  let failure =
    run_scripted (fun env ->
        env.Transport.e_send ~dst:1
          (Message.Attr { node = 424242; attr = "value"; value = Value.Int 1 });
        env.Transport.e_delay 0.01;
        env.Transport.e_send ~dst:1
          (Message.Subtree { frag = 0; bytes = 100; uid_base = Uid.stride }))
  in
  match failure with
  | Some msg ->
      check_bool
        (Printf.sprintf "protocol error reported (%s)" msg)
        true
        (String.length msg > 0)
  | None -> Alcotest.fail "expected the worker to reject the unknown node"

let test_combined_requires_plan () =
  let sim = S.create () in
  let saw = ref false in
  let _ =
    S.spawn sim ~name:"worker" (fun () ->
        match
          Worker.run (env_of sim 0)
            { (worker_config ()) with Worker.wc_plan = None }
            (simple_task ())
        with
        | _ -> ()
        | exception Worker.Stuck _ -> saw := true)
  in
  S.run sim;
  check_bool "stuck on missing plan" true !saw

let test_librarian_rejects_garbage () =
  let sim = S.create () in
  let failed = ref false in
  let lib =
    S.spawn sim ~name:"lib" (fun () ->
        match Librarian.run (env_of sim 0) ~coordinator:1 with
        | () -> ()
        | exception Failure _ -> failed := true)
  in
  let _ =
    S.spawn sim ~name:"coord" (fun () ->
        S.send ~dst:lib ~size:32
          (Message.Attr { node = 0; attr = "x"; value = Value.Unit }))
  in
  S.run sim;
  check_bool "librarian failed loudly" true !failed

let test_librarian_resolve_before_fragments () =
  (* the Resolve may overtake Code_frag messages; the librarian must wait *)
  let sim = S.create () in
  let final = ref "" in
  let lib =
    S.spawn sim ~name:"lib" (fun () -> Librarian.run (env_of sim 0) ~coordinator:1)
  in
  let coord =
    S.spawn sim ~name:"coord" (fun () ->
        let desc, frags =
          Codestr.extract_texts
            ~alloc:
              (let n = ref 0 in
               fun () ->
                 incr n;
                 !n)
            (Codestr.of_string "hello world")
        in
        S.send ~dst:lib ~size:16 (Message.Resolve { value = Codestr.value desc });
        S.delay 0.5;
        List.iter
          (fun (id, text) ->
            S.send ~dst:lib ~size:32 (Message.Code_frag { id; text }))
          frags;
        (match S.recv () with
        | Message.Final { text } -> final := Pag_util.Rope.to_string text
        | _ -> ());
        S.send ~dst:lib ~size:8 Message.Stop)
  in
  ignore coord;
  S.run sim;
  Alcotest.(check string) "assembled after late fragments" "hello world" !final

let suite =
  [
    ( "protocol",
      [
        Alcotest.test_case "normal exchange" `Quick test_normal_protocol;
        Alcotest.test_case "unexpected message" `Quick test_unexpected_message_kind;
        Alcotest.test_case "unknown node" `Quick test_attr_for_unknown_node;
        Alcotest.test_case "plan required" `Quick test_combined_requires_plan;
        Alcotest.test_case "librarian garbage" `Quick test_librarian_rejects_garbage;
        Alcotest.test_case "resolve before fragments" `Quick
          test_librarian_resolve_before_fragments;
      ] );
  ]
