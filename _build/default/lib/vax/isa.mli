(** VAX-subset assembly language.

    The compiler's target (paper, section 3: "VAX assembly language is
    produced"). This models the instructions and addressing modes the Pascal
    code generator emits: longword moves and arithmetic, comparisons and
    conditional branches, stack pushes with auto-increment/decrement modes,
    and the CALLS/RET procedure interface (simplified: the frame layout is
    documented in {!Machine}). Labels are symbolic; {!Machine} resolves them
    at load time. *)

type reg = int
(** 0..15; 12 = ap, 13 = fp, 14 = sp, 15 = pc *)

val r0 : reg
val r1 : reg
val r2 : reg
val ap : reg
val fp : reg
val sp : reg

type operand =
  | Imm of int  (** [$n] *)
  | Reg of reg  (** [rN] *)
  | Deref of reg  (** [(rN)] *)
  | Disp of int * reg  (** [d(rN)] *)
  | PostInc of reg  (** [(rN)+] *)
  | PreDec of reg  (** [-(rN)] *)
  | Lbl of string  (** address of a label *)

type instr =
  | Label of string
  | Comment of string
  | Movl of operand * operand
  | Moval of operand * operand  (** move address of first operand *)
  | Pushl of operand
  | Addl2 of operand * operand
  | Addl3 of operand * operand * operand
  | Subl2 of operand * operand
  | Subl3 of operand * operand * operand
  | Mull2 of operand * operand
  | Divl2 of operand * operand
  | Divl3 of operand * operand * operand
  | Mnegl of operand * operand  (** negate *)
  | Cmpl of operand * operand
  | Tstl of operand
  | Beql of string
  | Bneq of string
  | Blss of string
  | Bleq of string
  | Bgtr of string
  | Bgeq of string
  | Brb of string  (** unconditional branch *)
  | Calls of int * string  (** arg count, target *)
  | Ret
  | Halt

val pp_operand : Format.formatter -> operand -> unit

val pp_instr : Format.formatter -> instr -> unit

(** Render a program as assembly text, one instruction per line, labels
    outdented — the textual code attribute the compiler produces. *)
val to_string : instr list -> string

val reg_name : reg -> string
