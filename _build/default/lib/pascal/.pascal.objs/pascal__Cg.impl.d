lib/pascal/cg.ml: Ast Codestr Hashtbl List Pag_core Pag_util Printf Pvalue Rope Symtab Value Vax
