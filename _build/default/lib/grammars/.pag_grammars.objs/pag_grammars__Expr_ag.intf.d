lib/grammars/expr_ag.mli: Grammar Pag_core Random Tree
