lib/agspec/spec_parser.mli: Spec_ast
