lib/parallel/worker.ml: Array Codestr Cost Format Grammar Hashtbl Kastens List Message Pag_analysis Pag_core Pag_eval Printf Queue Static_eval Store Transport Tree Uid Value
