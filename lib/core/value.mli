(** Universal attribute values.

    Semantic rules are pure functions over this type. The closed cases cover
    what the paper's Pascal grammar needs (integers, rope strings for code
    attributes, applicative symbol tables, lists and pairs for aggregates);
    the extensible [Ext] case lets a client grammar add its own payloads
    (e.g. Pascal type descriptors) by registering operations once.

    [byte_size] models the paper's flattening functions ([st_put]/[st_get]):
    it is the length of the contiguous network representation of a value and
    drives simulated message costs. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of Pag_util.Rope.t
  | List of t list
  | Pair of t * t
  | Tab of t Pag_util.Symtab.t
  | Ext of ext

and ext = ..

(** Operations for one family of [Ext] payloads. Each function returns
    [None]/[false] when the payload is not from this family. *)
type ext_ops = {
  ext_name : string;
  ext_equal : ext -> ext -> bool option;
  ext_hash : ext -> int option;
      (** Must be consistent with [ext_equal]: payloads it deems equal must
          hash equally. Inconsistency only costs missed sharing under
          {!intern}, never wrong results. *)
  ext_size : ext -> int option;
  ext_pp : Format.formatter -> ext -> bool;
}

val register_ext : ext_ops -> unit

exception Type_error of string

(** Structural equality; symbol tables compare as binding sets, ropes by
    content. Raises [Type_error] on an unregistered [Ext] payload. *)
val equal : t -> t -> bool

(** Size in bytes of the flattened representation. *)
val byte_size : t -> int

(** Size in bytes of the DAG-encoded representation exchanged between two
    arena-aware peers (the intern librarian): each distinct canonical
    subvalue counted once, repeats cost a fixed backreference when that is
    cheaper. Never larger than {!byte_size}; equal when the value has no
    internal sharing. Interns the value. *)
val dag_byte_size : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Coercions, raising [Type_error] with the given context on mismatch. *)

val as_int : ctx:string -> t -> int

val as_bool : ctx:string -> t -> bool

val as_str : ctx:string -> t -> Pag_util.Rope.t

val as_list : ctx:string -> t -> t list

val as_pair : ctx:string -> t -> t * t

val as_tab : ctx:string -> t -> t Pag_util.Symtab.t

(** Convenience constructors. *)

val str : string -> t

val of_rope : Pag_util.Rope.t -> t

(** {1 Hash-consing}

    {!intern} returns the canonical representative of a value from a
    process-wide weak arena ({!Pag_util.Hcons}), built bottom-up so that
    structurally identical values (under a slightly finer relation than
    {!equal}: shape-preserving for ropes and symbol tables) become
    physically equal. Canonical values support O(1) equality ([==]) and
    O(1) {!hash} — the keys of the evaluators' subtree memo tables and of
    the intern librarian's wire cache. Interning never changes what
    {!equal} observes. *)

val intern : t -> t

(** Structural hash consistent with {!intern} (physically equal canonical
    values hash equally); not consistent with {!equal}, which is coarser.
    O(1) on interned values; interns first otherwise. *)
val hash : t -> int
