(* Chase-Lev work-stealing deque over immediate ints. See steal.mli for
   the memory-model argument; the algorithm follows Chase & Lev, "Dynamic
   Circular Work-Stealing Deque" (SPAA 2005), with the owner's pop racing
   thieves on the last element via a CAS on [top].

   Indices grow without bound; the slot for index [i] is
   [i land (capacity - 1)] (capacity is a power of two). A slot holding
   index [i] is only rewritten once [bottom] has advanced at least
   [capacity] past it, which requires [top] to have advanced past [i]
   first (the owner checks occupancy before pushing), so a thief that
   CASes [top] from [t] to [t+1] has read the value belonging to [t]. *)

type t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  tab : int array Atomic.t;
}

let min_capacity = 16

let create () =
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    tab = Atomic.make (Array.make min_capacity 0);
  }

let grow q ~top ~bottom =
  let old = Atomic.get q.tab in
  let old_cap = Array.length old in
  let arr = Array.make (2 * old_cap) 0 in
  let new_mask = (2 * old_cap) - 1 in
  for i = top to bottom - 1 do
    arr.(i land new_mask) <- old.(i land (old_cap - 1))
  done;
  Atomic.set q.tab arr

let push q v =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  let arr = Atomic.get q.tab in
  let arr =
    if b - t >= Array.length arr then begin
      grow q ~top:t ~bottom:b;
      Atomic.get q.tab
    end
    else arr
  in
  arr.(b land (Array.length arr - 1)) <- v;
  Atomic.set q.bottom (b + 1)

let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* empty: restore the canonical empty state *)
    Atomic.set q.bottom t;
    None
  end
  else begin
    let arr = Atomic.get q.tab in
    let v = arr.(b land (Array.length arr - 1)) in
    if b > t then Some v
    else begin
      (* last element: race thieves for it *)
      let won = Atomic.compare_and_set q.top t (t + 1) in
      Atomic.set q.bottom (t + 1);
      if won then Some v else None
    end
  end

let steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then None
  else begin
    let arr = Atomic.get q.tab in
    let v = arr.(t land (Array.length arr - 1)) in
    if Atomic.compare_and_set q.top t (t + 1) then Some v else None
  end

let size q =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  max 0 (b - t)

let steal_some victim =
  let want = max 1 ((size victim + 1) / 2) in
  let rec go n acc =
    if n = 0 then List.rev acc
    else
      match steal victim with
      | Some v -> go (n - 1) (v :: acc)
      | None -> List.rev acc
  in
  go want []

let steal_half victim ~into =
  let items = steal_some victim in
  List.iter (push into) items;
  List.length items

type stats = {
  mutable st_fired : int;
  mutable st_attempts : int;
  mutable st_successes : int;
  mutable st_stolen : int;
  mutable st_hwm : int;
  mutable st_idle : float;
}

let zero_stats () =
  {
    st_fired = 0;
    st_attempts = 0;
    st_successes = 0;
    st_stolen = 0;
    st_hwm = 0;
    st_idle = 0.0;
  }
