lib/eval/store.ml: Array Grammar Hashtbl List Pag_core Printf Tree Value
