(** Code strings that may contain remote fragments — the data type behind the
    paper's {b string librarian} (section 4.3).

    A code attribute is a rope-like tree whose leaves are either local text
    or references to fragments held by the string librarian process. The
    semantic rules of a grammar only ever concatenate ({!concat} is O(1)), so
    switching between naive and librarian-based result propagation needs no
    grammar change: the boundary conversion function either flattens the
    whole text ({!to_rope}) or ships the text to the librarian and passes a
    small descriptor upward ({!extract_texts}). The root's descriptor is
    finally {!resolve}d by the librarian. *)

open Pag_util

type t

(** Registered as a {!Value.ext} payload under this constructor. *)
type Value.ext += V of t

val empty : t

val of_string : string -> t

val of_rope : Rope.t -> t

val concat : t -> t -> t

val concat_list : t list -> t

(** Total length in characters of the denoted text (local + remote). *)
val length : t -> int

(** Number of remote fragment references. *)
val frag_count : t -> int

(** Bytes this value occupies on the wire: local text counts in full, a
    fragment reference counts as a small fixed descriptor. *)
val wire_size : t -> int

exception Unresolved of int

(** Flatten to a rope. Raises [Unresolved id] if a fragment reference
    remains. *)
val to_rope : t -> Rope.t

(** [extract_texts ~alloc t] replaces every maximal local-text subtree by a
    fresh fragment reference; returns the descriptor and the extracted
    fragments. This is what an evaluator does before sending its final code
    attribute: fragments go to the librarian, the descriptor to the parent. *)
val extract_texts : alloc:(unit -> int) -> t -> t * (int * Rope.t) list

(** [resolve ~lookup t] substitutes fragment texts back (librarian side). *)
val resolve : lookup:(int -> Rope.t) -> t -> Rope.t

(** {1 Value embedding} *)

val value : t -> Value.t

val of_value : ctx:string -> Value.t -> t

val pp : Format.formatter -> t -> unit
