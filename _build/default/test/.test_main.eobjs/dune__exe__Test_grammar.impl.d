test/test_grammar.ml: Alcotest Array Grammar List Pag_core Value
