lib/util/pqueue.mli:
