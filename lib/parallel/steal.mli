(** Chase-Lev-style work-stealing deque of rule-instance ids.

    One deque per domain (or per simulated machine). The owner pushes and
    pops ready instance ids at the bottom in LIFO order — newly-released
    consumers are hot in cache, so depth-first execution keeps locality.
    Thieves remove from the top in FIFO order, which tends to transfer the
    oldest (and, for tree-shaped dependency graphs, largest) pending
    subcomputations.

    The implementation is the classic circular-array Chase-Lev deque
    expressed with OCaml 5 [Atomic]s: [top] and [bottom] are atomic
    indices; the element array is reached through an atomic reference so a
    grow by the owner is published to thieves. Element slots themselves
    are plain [int array] cells — a slot written by the owner is published
    to thieves by the subsequent [Atomic.set] on [bottom], and a slot is
    never reused until [top] has advanced past it, so the usual ABA
    argument applies. Payloads are immediate ints (rule-instance ids), so
    no torn reads are possible.

    This module lives in its own tiny library ([pag_steal]) so that both
    [pag_eval] (the engine's [run_steal]) and [pag_parallel] (the
    simulated-transport scheduler) can use it without creating a
    dependency cycle. *)

type t

val create : unit -> t

val push : t -> int -> unit
(** Owner-only: push at the bottom. *)

val pop : t -> int option
(** Owner-only: pop at the bottom (LIFO). Returns [None] when empty; on
    the last element it races thieves with a CAS on [top] and may lose. *)

val steal : t -> int option
(** Thief: remove one element from the top (FIFO). [None] when the deque
    is observed empty or the CAS on [top] loses a race. *)

val steal_some : t -> int list
(** [steal_some victim] removes up to half of [victim]'s observed size
    (at least one attempt) via repeated single steals and returns the
    elements in steal (FIFO) order, without making them visible to any
    deque. Use when the transfer has latency — e.g. the netsim scheduler
    holds stolen instances "in flight" for the simulated reply time, so a
    third party cannot re-steal them mid-transfer (at two machines that
    re-steal window is a livelock: one pending instance bounces between
    the deques forever, each successful probe resetting the backoff). *)

val steal_half : t -> into:t -> int
(** [steal_half victim ~into] transfers up to half of [victim]'s observed
    size (at least one attempt) into the caller's own deque [into] via
    repeated single steals, and returns the number of elements actually
    transferred. [into] must be owned by the caller. Equivalent to
    pushing [steal_some victim] — use where the transfer is immediate
    (the shared-memory domains scheduler). *)

val size : t -> int
(** Racy size estimate ([bottom - top] clamped at 0). Exact when no other
    domain is concurrently operating on the deque. *)

(** {1 Per-domain scheduler statistics} *)

type stats = {
  mutable st_fired : int;      (** rule instances executed by this domain *)
  mutable st_attempts : int;   (** steal probes issued *)
  mutable st_successes : int;  (** probes that transferred ≥ 1 task *)
  mutable st_stolen : int;     (** total tasks transferred in *)
  mutable st_hwm : int;        (** own-deque depth high-water mark *)
  mutable st_idle : float;     (** time spent idle/backing off: virtual
                                   seconds under the netsim, backoff
                                   rounds under real domains *)
}

val zero_stats : unit -> stats
