(** The Pascal-subset compiler as an attribute grammar.

    Two-visit structure, matching the phases visible in the paper's figure 6:
    visit 1 collects declarations bottom-up ([dlist], [plist], [ty]); the
    scope combination at each block turns them into the symbol-table
    attribute [env] (a priority attribute) that flows back down, and visit 2
    performs type checking and VAX code generation ([code], [errs]).

    [code] values are {!Pag_core.Codestr} assembly text: concatenation is
    O(1) and the string librarian dismantles them at fragment boundaries.
    Parse trees may be split at statements, statement lists, declarations and
    declaration lists, as in the paper.

    The grammar comes in two variants differing in how unique labels are
    generated (paper, end of section 4.3):
    - [`Base]: semantic rules draw labels from the per-evaluator base value
      handed out by the parser ({!Pag_core.Uid}) — the paper's fix;
    - [`Threaded]: a counter attribute [lab_in]/[lab_out] is threaded
      through the entire tree, the conventional sequential technique whose
      cross-fragment dependency chain serializes parallel evaluation — the
      ablation of experiment E7. *)

open Pag_core

type mode = [ `Base | `Threaded ]

val make : mode -> Grammar.t

(** Cached [`Base] grammar. *)
val grammar : Grammar.t

(** Cached [`Threaded] grammar. *)
val grammar_threaded : Grammar.t

(** Build the attribute-grammar parse tree of a program. The same shapes
    work for both variants (pass the grammar the tree is for). *)
val tree_of_program : Grammar.t -> Ast.program -> Tree.t

(** Convenience accessors on the evaluated root attributes. *)

val code_of_attrs : (string * Value.t) list -> string

val errors_of_attrs : (string * Value.t) list -> string list
