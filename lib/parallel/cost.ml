type t = {
  static_rule : float;
  dynamic_rule : float;
  steal_rule : float;
  steal_init : float;
  build_node : float;
  build_edge : float;
  visit : float;
  rebuild_per_byte : float;
}

(* ~1 MIPS machine: a semantic rule is a few hundred instructions; dynamic
   scheduling roughly doubles that; graph construction costs a couple of
   hundred instructions per instance and per edge. *)
(* Work-stealing pays flat-table scheduling on top of the rule: a deque
   pop and a handful of counter decrements, far less than the 1987-style
   dynamic scheduler's graph walk, but more than a precomputed visit
   sequence. *)
let default =
  {
    static_rule = 350e-6;
    dynamic_rule = 500e-6;
    steal_rule = 385e-6;
    steal_init = 10e-6;
    build_node = 120e-6;
    build_edge = 90e-6;
    visit = 40e-6;
    rebuild_per_byte = 0.4e-6;
  }

let rule_cost t ~dynamic = if dynamic then t.dynamic_rule else t.static_rule

let visit_cost t ~visits ~evals =
  (float_of_int visits *. t.visit) +. (float_of_int evals *. t.static_rule)
