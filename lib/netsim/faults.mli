(** Seed-deterministic network fault model.

    The paper's evaluation assumes V-System messages on a quiet Ethernet
    never vanish. This module drops that assumption: a {!spec} describes a
    fault plan — per-message drop, duplication, reordering jitter, delay
    spikes, and machine crash-at-time-t — and {!Sim} consults it on every
    transmission. All randomness comes from per-sender PRNG streams derived
    from [fs_seed], so a given (spec, workload) pair replays identically on
    the deterministic simulator, and each sender's fault sequence is stable
    even under the nondeterministic thread interleaving of the domains
    transport. *)

type spec = {
  fs_drop : float;  (** probability a message vanishes on the wire *)
  fs_dup : float;  (** probability a message is delivered twice *)
  fs_reorder : float;
      (** probability a message is held back past later traffic *)
  fs_reorder_window : float;
      (** extra delivery latency (seconds) modelling the hold-back *)
  fs_delay : float;  (** probability of a delay spike *)
  fs_spike : float;  (** delay-spike magnitude, seconds *)
  fs_crashes : (int * float) list;
      (** (machine id, time): the machine stops executing and receiving *)
  fs_seed : int;  (** PRNG seed; same seed = same fault pattern *)
}

(** All rates zero, no crashes, seed 1. *)
val none : spec

(** True if any rate is positive or a crash is scheduled. A disabled spec
    still engages the reliable-delivery layer (for overhead measurement)
    but injects nothing. *)
val is_enabled : spec -> bool

(** Parse a command-line fault plan, e.g.
    ["drop=0.05,dup=0.02,reorder=0.1,delay=0.01@0.25,crash=3@12.0"].
    [crash] may repeat; [delay] and [crash] take [p@magnitude] /
    [machine@time] forms. Unknown keys or malformed numbers are errors. *)
val parse : ?seed:int -> string -> (spec, string) result

val pp : Format.formatter -> spec -> unit

(** Per-message fault decision. *)
type verdict = {
  v_drop : bool;
  v_dup : bool;
  v_reorder : bool;  (** domains transport: swap with the sender's next send *)
  v_delay : float;  (** simulator: extra delivery latency, seconds *)
}

(** No fault: deliver normally. *)
val clean : verdict

(** Counters of injected faults, for reporting. *)
type stats = {
  mutable st_dropped : int;
  mutable st_duplicated : int;
  mutable st_delayed : int;  (** reorder hold-backs and delay spikes *)
}

(** A spec instantiated with its PRNG streams. *)
type t

val make : spec -> t

val spec : t -> spec

(** Judge one transmission from [src] to [dst]. Decisions are drawn from
    [src]'s private stream, in send order. *)
val judge : t -> src:int -> dst:int -> verdict

val stats : t -> stats
