lib/agspec/spec_parser.ml: Buffer List Printf Spec_ast String
