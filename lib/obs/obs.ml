type kind = Span | Instant | Flow

type event = {
  e_kind : kind;
  e_pid : int;
  e_dst : int;
  e_t0 : float;
  e_t1 : float;
  e_name : string;
}

(* Struct-of-arrays buffer: one push is a bounds check and five stores, no
   per-event boxing. [disabled] shares immutable empty arrays and bails on
   the [on] flag before touching them. *)
type recorder = {
  on : bool;
  mutable len : int;
  mutable r_kind : int array;  (* 0 span, 1 instant, 2 flow *)
  mutable r_pid : int array;
  mutable r_dst : int array;
  mutable r_t0 : float array;
  mutable r_t1 : float array;
  mutable r_name : string array;
}

let disabled =
  {
    on = false;
    len = 0;
    r_kind = [||];
    r_pid = [||];
    r_dst = [||];
    r_t0 = [||];
    r_t1 = [||];
    r_name = [||];
  }

let initial_capacity = 1024

let create () =
  {
    on = true;
    len = 0;
    r_kind = Array.make initial_capacity 0;
    r_pid = Array.make initial_capacity 0;
    r_dst = Array.make initial_capacity (-1);
    r_t0 = Array.make initial_capacity 0.0;
    r_t1 = Array.make initial_capacity 0.0;
    r_name = Array.make initial_capacity "";
  }

let enabled r = r.on

let length r = r.len

let grow r =
  let cap = max initial_capacity (2 * Array.length r.r_kind) in
  let extend mk a =
    let b = mk cap in
    Array.blit a 0 b 0 r.len;
    b
  in
  r.r_kind <- extend (fun n -> Array.make n 0) r.r_kind;
  r.r_pid <- extend (fun n -> Array.make n 0) r.r_pid;
  r.r_dst <- extend (fun n -> Array.make n (-1)) r.r_dst;
  r.r_t0 <- extend (fun n -> Array.make n 0.0) r.r_t0;
  r.r_t1 <- extend (fun n -> Array.make n 0.0) r.r_t1;
  r.r_name <- extend (fun n -> Array.make n "") r.r_name

let push r kind pid dst t0 t1 name =
  if r.len >= Array.length r.r_kind then grow r;
  let i = r.len in
  r.r_kind.(i) <- kind;
  r.r_pid.(i) <- pid;
  r.r_dst.(i) <- dst;
  r.r_t0.(i) <- t0;
  r.r_t1.(i) <- t1;
  r.r_name.(i) <- name;
  r.len <- i + 1

let span r ~pid ~t0 ~t1 name = if r.on then push r 0 pid (-1) t0 t1 name

let instant r ~pid ~t name = if r.on then push r 1 pid (-1) t t name

let flow r ~src ~dst ~send ~recv name =
  if r.on then push r 2 src dst send recv name

let event_at r i =
  {
    e_kind = (match r.r_kind.(i) with 0 -> Span | 1 -> Instant | _ -> Flow);
    e_pid = r.r_pid.(i);
    e_dst = r.r_dst.(i);
    e_t0 = r.r_t0.(i);
    e_t1 = r.r_t1.(i);
    e_name = r.r_name.(i);
  }

let iter r f =
  for i = 0 to r.len - 1 do
    f (event_at r i)
  done

let merge rs =
  let total = List.fold_left (fun a r -> a + r.len) 0 rs in
  let order = Array.make (max 1 total) (disabled, 0) in
  let n = ref 0 in
  List.iter
    (fun r ->
      for i = 0 to r.len - 1 do
        order.(!n) <- (r, i);
        incr n
      done)
    rs;
  let order = Array.sub order 0 total in
  (* Stable, so simultaneous events keep their per-machine order. *)
  Array.stable_sort
    (fun (ra, ia) (rb, ib) -> Float.compare ra.r_t0.(ia) rb.r_t0.(ib))
    order;
  let out = create () in
  Array.iter
    (fun (r, i) ->
      push out r.r_kind.(i) r.r_pid.(i) r.r_dst.(i) r.r_t0.(i) r.r_t1.(i)
        r.r_name.(i))
    order;
  out

(* ------------------------------------------------------------------ *)

module Metrics = struct
  type counter = { mutable c : int; c_live : bool }

  type histogram = {
    mutable h_count : int;
    mutable h_sum : float;
    mutable h_min : float;
    mutable h_max : float;
    h_buckets : int array;  (* power-of-two buckets by exponent *)
    h_live : bool;
  }

  type metric = C of counter | G of float ref | H of histogram

  type t = {
    m_live : bool;
    tbl : (string, metric) Hashtbl.t;
  }

  let create () = { m_live = true; tbl = Hashtbl.create 32 }

  let null = { m_live = false; tbl = Hashtbl.create 1 }

  let live t = t.m_live

  let labeled name = function
    | [] -> name
    | labels ->
        let body =
          String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
        in
        name ^ "{" ^ body ^ "}"

  let dead_counter = { c = 0; c_live = false }

  let n_buckets = 64

  let dead_histogram =
    {
      h_count = 0;
      h_sum = 0.0;
      h_min = infinity;
      h_max = neg_infinity;
      h_buckets = [||];
      h_live = false;
    }

  let counter t name =
    if not t.m_live then dead_counter
    else
      match Hashtbl.find_opt t.tbl name with
      | Some (C c) -> c
      | Some _ -> invalid_arg ("Obs.Metrics.counter: " ^ name ^ " is not a counter")
      | None ->
          let c = { c = 0; c_live = true } in
          Hashtbl.add t.tbl name (C c);
          c

  let add c n = if c.c_live then c.c <- c.c + n

  let incr c = add c 1

  let value c = c.c

  let counter_value t name =
    match Hashtbl.find_opt t.tbl name with Some (C c) -> c.c | _ -> 0

  let gauge_ref t name =
    match Hashtbl.find_opt t.tbl name with
    | Some (G g) -> g
    | Some _ -> invalid_arg ("Obs.Metrics.gauge: " ^ name ^ " is not a gauge")
    | None ->
        let g = ref 0.0 in
        Hashtbl.add t.tbl name (G g);
        g

  let set_gauge t name v = if t.m_live then gauge_ref t name := v

  let add_gauge t name v =
    if t.m_live then begin
      let g = gauge_ref t name in
      g := !g +. v
    end

  let set_gauge_max t name v =
    if t.m_live then begin
      let g = gauge_ref t name in
      if v > !g then g := v
    end

  let gauge_value t name =
    match Hashtbl.find_opt t.tbl name with Some (G g) -> Some !g | _ -> None

  let histogram t name =
    if not t.m_live then dead_histogram
    else
      match Hashtbl.find_opt t.tbl name with
      | Some (H h) -> h
      | Some _ ->
          invalid_arg ("Obs.Metrics.histogram: " ^ name ^ " is not a histogram")
      | None ->
          let h =
            {
              h_count = 0;
              h_sum = 0.0;
              h_min = infinity;
              h_max = neg_infinity;
              h_buckets = Array.make n_buckets 0;
              h_live = true;
            }
          in
          Hashtbl.add t.tbl name (H h);
          h

  let bucket_of v =
    if v <= 1.0 then 0
    else
      let e = snd (Float.frexp v) in
      min (n_buckets - 1) (max 0 e)

  let observe h v =
    if h.h_live then begin
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v;
      let b = bucket_of v in
      h.h_buckets.(b) <- h.h_buckets.(b) + 1
    end

  let merge ~into src =
    if into.m_live then
      Hashtbl.iter
        (fun name m ->
          match m with
          | C c -> add (counter into name) c.c
          | G g -> add_gauge into name !g
          | H h ->
              let d = histogram into name in
              d.h_count <- d.h_count + h.h_count;
              d.h_sum <- d.h_sum +. h.h_sum;
              if h.h_min < d.h_min then d.h_min <- h.h_min;
              if h.h_max > d.h_max then d.h_max <- h.h_max;
              Array.iteri
                (fun i n -> d.h_buckets.(i) <- d.h_buckets.(i) + n)
                h.h_buckets)
        src.tbl

  let rows t =
    Hashtbl.fold
      (fun name m acc ->
        let v =
          match m with
          | C c -> string_of_int c.c
          | G g ->
              if Float.is_integer !g && Float.abs !g < 1e15 then
                Printf.sprintf "%.0f" !g
              else Printf.sprintf "%.4f" !g
          | H h ->
              if h.h_count = 0 then "0 samples"
              else
                Printf.sprintf "%d samples, sum %.0f, min %.0f, max %.0f"
                  h.h_count h.h_sum h.h_min h.h_max
        in
        (name, v) :: acc)
      t.tbl []
    |> List.sort (fun (a, _) (b, _) ->
           (* Labeled series ("name{k=v}") must group under their base
              name: '{' sorts after '.', so a plain [compare] interleaves
              "x.y" rows between "x{...}" and "x.z{...}". Split at the
              label brace and order by (base, label). *)
           let split n =
             match String.index_opt n '{' with
             | Some i ->
                 (String.sub n 0 i, String.sub n i (String.length n - i))
             | None -> (n, "")
           in
           compare (split a) (split b))
end

(* ------------------------------------------------------------------ *)

type ctx = {
  x_rec : recorder;
  x_metrics : Metrics.t;
  x_pid : int;
  x_clock : unit -> float;
}

let null_ctx =
  { x_rec = disabled; x_metrics = Metrics.null; x_pid = 0; x_clock = (fun () -> 0.0) }

let make_ctx ~pid ~clock =
  { x_rec = create (); x_metrics = Metrics.create (); x_pid = pid; x_clock = clock }

let ctx_enabled x = x.x_rec.on

let with_span x name f =
  if x.x_rec.on then begin
    let t0 = x.x_clock () in
    let r = f () in
    span x.x_rec ~pid:x.x_pid ~t0 ~t1:(x.x_clock ()) name;
    r
  end
  else f ()

let event x name =
  if x.x_rec.on then instant x.x_rec ~pid:x.x_pid ~t:(x.x_clock ()) name

(* ------------------------------------------------------------------ *)

module Json = struct
  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let num v =
    if Float.is_nan v || Float.abs v = infinity then "0"
    else if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.0f" v
    else Printf.sprintf "%.6f" v
end

(* ------------------------------------------------------------------ *)

module Report = struct
  type machine = {
    rm_pid : int;
    rm_name : string;
    rm_active : float;
    rm_idle : float;
    rm_util : float;
    rm_sends : int;
    rm_max_queue : int;
  }

  type t = {
    rp_label : string;
    rp_clock : string;
    rp_horizon : float;
    rp_machines : machine list;
    rp_dynamic_rules : int;
    rp_static_rules : int;
    rp_messages : int;
    rp_bytes : int;
    rp_retransmits : int;
    rp_metrics : Metrics.t;
  }

  let dynamic_fraction t =
    let total = t.rp_dynamic_rules + t.rp_static_rules in
    if total = 0 then 0.0
    else float_of_int t.rp_dynamic_rules /. float_of_int total

  let render t =
    let b = Buffer.create 1024 in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
    line "== evaluation report %s" (String.make 43 '=');
    line "%-16s %s" "run" t.rp_label;
    line "%-16s %.3f s (%s)" "finished at" t.rp_horizon t.rp_clock;
    if t.rp_machines <> [] then begin
      line "%-16s %-12s %9s %9s %6s %7s %6s" "machines" "" "active" "idle"
        "util" "sends" "maxq";
      List.iter
        (fun m ->
          line "%-16s %-12s %8.3fs %8.3fs %5.1f%% %7d %6s" "" m.rm_name
            m.rm_active m.rm_idle
            (100.0 *. m.rm_util)
            m.rm_sends
            (if m.rm_max_queue < 0 then "-" else string_of_int m.rm_max_queue))
        t.rp_machines
    end;
    let total_rules = t.rp_dynamic_rules + t.rp_static_rules in
    line "%-16s %d static + %d dynamic = %d rules (%.2f%% dynamic)" "attributes"
      t.rp_static_rules t.rp_dynamic_rules total_rules
      (100.0 *. dynamic_fraction t);
    line "%-16s %d messages, %d bytes on the wire, %d retransmissions"
      "network" t.rp_messages t.rp_bytes t.rp_retransmits;
    (match Metrics.gauge_value t.rp_metrics "librarian.bytes" with
    | Some bytes when bytes > 0.0 ->
        line "%-16s %.0f bytes of code shipped exactly once (%.0f fragments)"
          "librarian" bytes
          (Option.value ~default:0.0
             (Metrics.gauge_value t.rp_metrics "librarian.fragments"))
    | _ -> ());
    let rows = Metrics.rows t.rp_metrics in
    if rows <> [] then begin
      line "%-16s" "metrics";
      List.iter (fun (name, v) -> line "  %-34s %s" name v) rows
    end;
    Buffer.contents b
end
