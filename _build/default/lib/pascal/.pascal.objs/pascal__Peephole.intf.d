lib/pascal/peephole.mli: Vax
