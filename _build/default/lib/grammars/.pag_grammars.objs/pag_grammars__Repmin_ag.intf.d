lib/grammars/repmin_ag.mli: Grammar Pag_core Random Tree Value
