type ('a, 'b) t = { slots : ('a * 'b) option array; mask : int }

let create bits =
  let n = 1 lsl bits in
  { slots = Array.make n None; mask = n - 1 }

(* The polymorphic hash visits a bounded prefix of the key and physically
   equal keys hash equally. Content-equal but physically distinct keys
   also hash equally — in a chained table they would all share one bucket
   (the lookup degenerating to a linear scan over every duplicate ever
   inserted); here they share one slot and merely evict each other. *)
let slot t k = Hashtbl.hash k land t.mask

let find_opt t k =
  match t.slots.(slot t k) with
  | Some (k', v) when k' == k -> Some v
  | _ -> None

let mem t k = find_opt t k <> None

let replace t k v = t.slots.(slot t k) <- Some (k, v)

let reset t = Array.fill t.slots 0 (Array.length t.slots) None
