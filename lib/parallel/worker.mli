(** A parallel attribute evaluator for one tree fragment (paper, sections
    2.1, 2.3 and 2.4).

    In [`Combined] mode, only nodes on the path from the fragment root to a
    remotely evaluated stub (the {e spine}) are evaluated dynamically; every
    other subtree hanging off the spine is evaluated by the static visit
    sequences, entered as a single unit ("when all predecessors for a
    statically evaluated attribute become available, the appropriate static
    visit procedure is invoked"). A fragment with no cuts is evaluated
    entirely statically. In [`Dynamic] mode every node is on the spine — the
    paper's purely dynamic parallel evaluator.

    Boundary attribute instances (inherited attributes of the fragment root,
    synthesized attributes of the stubs) are received from, and boundary
    products sent to, the neighbouring evaluators as {!Message.Attr}
    messages. With a librarian configured, the fragment root's synthesized
    code strings are shipped to the librarian as text fragments and only a
    small descriptor is passed to the parent. *)

open Pag_core
open Pag_analysis

type mode = [ `Dynamic | `Combined ]

type config = {
  wc_grammar : Grammar.t;
  wc_plan : Kastens.plan option;  (** required in [`Combined] mode *)
  wc_mode : mode;
  wc_cost : Cost.t;
  wc_use_priority : bool;
      (** schedule rules defining priority attributes first *)
  wc_librarian : int option;  (** librarian machine id; [None] = naive mode *)
  wc_phase_label : int -> string option;
      (** trace label for the first execution of a static visit [v] *)
  wc_obs : Pag_obs.Obs.ctx;
      (** telemetry context; {!Pag_obs.Obs.null_ctx} disables recording *)
  wc_sharing : Tree.sharing option;
      (** tree-sharing classes of the whole tree ({!Pag_core.Tree.sharing});
          [Some] enables hash-consed evaluation — static visits of repeated
          subtrees are memoized per inherited fingerprint, spine rules per
          canonical argument vector *)
  wc_prov : Pag_obs.Prov.t;
      (** provenance ring for this machine's firings
          ({!Pag_obs.Prov.disabled} records nothing); pid is the machine
          id, the clock the transport's *)
  wc_prov_dwell : bool;
      (** [true] (simulated transports): price firing durations from the
          cost model, since the virtual clock does not advance inside a
          firing; [false] (domains): read wall time twice *)
  wc_engine_hook : Pag_eval.Engine.t -> unit;
      (** receives the fragment engine once built — the runner stashes it
          so {!Pag_eval.Causal.build} can resolve this ring's slots *)
}

type task = {
  t_frag_id : int;
  t_root : Tree.t;  (** fragment root (shared tree, global node ids) *)
  t_cuts : (Tree.t * int) list;  (** stub node, machine evaluating it *)
  t_parent_machine : int;  (** destination of the fragment root's syn attrs *)
  t_root_is_tree_root : bool;
}

type stats = {
  ws_dynamic_rules : int;
  ws_static_rules : int;
  ws_visits : int;
  ws_graph_nodes : int;
  ws_graph_edges : int;
  ws_sends : int;
  ws_spine_len : int;  (** nodes evaluated dynamically (on the spine) *)
  ws_idle_wait : float;  (** time blocked waiting for boundary messages *)
  ws_bytes_flattened : int;  (** bytes of boundary messages originated *)
}

exception Stuck of string

(** The all-zero record — what {!run} reports for an aborted evaluator. *)
val zero_stats : stats

(** Runs the evaluator protocol: waits for its [Subtree] assignment, builds
    the (partial) dependency structure, evaluates, exchanging boundary
    attributes, and returns when every local instance is evaluated and every
    boundary product sent ([e_flush] is called before returning so a
    reliable transport has delivered everything). Receiving {!Message.Stop}
    at any point aborts the run — the coordinator has recovered from a fault
    locally and no longer needs this fragment — and returns {!zero_stats}. *)
val run : Transport.env -> config -> task -> stats
