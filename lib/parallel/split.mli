(** Parse-tree decomposition (paper, sections 2.1 and 2.5, figure 7).

    The parser divides the syntax tree into up to [machines] fragments, each
    shipped to one evaluator. Fragments may only be rooted at nonterminals
    the grammar declares splittable, and only when the subtree's linearized
    representation reaches the declared minimum size scaled by the runtime
    [granularity] argument (the paper's knob for experimenting with
    decomposition granularity).

    The algorithm repeatedly halves the largest fragment: among the
    candidate nodes inside it, the one whose residual subtree is closest to
    half the fragment's residual size is cut off. This nests naturally
    (figure 7 shows a fragment cut out of another fragment) and yields
    fragments of roughly equal size — the paper's stated reason the 5-machine
    decomposition performs best. *)

open Pag_core

type fragment = {
  fr_id : int;  (** 0 is the root fragment *)
  fr_root : Tree.t;
  fr_parent : int option;  (** fragment holding the stub *)
  fr_bytes : int;  (** residual linearized size (cuts excluded) *)
}

type plan

(** [decompose g tree ~machines ~granularity]. The tree must already be
    numbered (global node ids). [machines] ≥ 1; granularity > 0 scales every
    split symbol's minimum size. *)
val decompose :
  Grammar.t -> Tree.t -> machines:int -> granularity:float -> plan

val fragments : plan -> fragment array

(** Fragment owning a cut whose root is the given node id, if any. *)
val fragment_of_cut_node : plan -> int -> int option

(** [owner_of plan node] — the fragment whose machine evaluates [node]:
    the deepest fragment physically containing it (search stops at cut
    stubs, which the next fragment owns). Comparison is physical, so
    replacement subtrees grafted by an edit session are found under the
    fragment they were grafted into; [None] when the node is not in the
    plan's tree at all. *)
val owner_of : plan -> Tree.t -> int option

(** Node ids of the stubs cut out of the given fragment. *)
val cuts_of : plan -> int -> int list

(** Fragment count (≤ machines). *)
val count : plan -> int

(** Ill-formed wire bytes (truncated input, unknown tag, backreference to
    an unshipped class). *)
exception Malformed of string

(** [encode ?sharing plan f] — the fragment's real wire representation.
    Nodes travel as production/symbol names plus terminal-attribute
    literals (both ends hold the grammar); cut children travel as stubs.
    With [sharing], the first occurrence of a repeated subtree shipped to
    this destination carries a definition marker binding its shape-class
    id, and every later occurrence is a 5-byte backreference — each class
    body crosses the wire once per machine, not once per occurrence
    (occurrences whose id range contains a cut are excluded: structurally
    different on this machine; single-node classes are reshipped, a
    reference would cost as much). The shared encoding is never longer
    than the plain one. *)
val encode : ?sharing:Tree.sharing -> plan -> fragment -> string

(** [decode g bytes] rebuilds the shipped fragment: backreferences expand
    to fresh copies of the class body, cut stubs become childless nodes of
    the cut symbol carrying a ["cut"] attribute with the stub's node id.
    Raises {!Malformed} on ill-formed input. *)
val decode : Grammar.t -> string -> Tree.t

(** [dag_bytes plan sharing f] = [String.length (encode plan sharing f)]:
    the priced and the shipped representation are the same bytes. *)
val dag_bytes : plan -> Tree.sharing -> fragment -> int

(** Render the decomposition as an indented tree with sizes (figure 7). *)
val pp : Format.formatter -> plan -> unit
