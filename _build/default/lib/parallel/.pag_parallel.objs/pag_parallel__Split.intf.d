lib/parallel/split.mli: Format Grammar Pag_core Tree
