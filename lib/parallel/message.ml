open Pag_core
open Pag_util

type t =
  | Subtree of { frag : int; bytes : int; uid_base : int }
  | Attr of { node : int; attr : string; value : Value.t }
  | Code_frag of { id : int; text : Rope.t }
  | Resolve of { value : Value.t }
  | Final of { text : Rope.t }
  | Stop
  | Data of { src : int; seq : int; payload : t }
  | Ack of { src : int; seq : int }
  | Ping

let header_bytes = 16

let seq_bytes = 8

let rec size = function
  | Subtree s -> header_bytes + s.bytes
  | Attr a -> header_bytes + String.length a.attr + Value.byte_size a.value
  | Code_frag c -> header_bytes + Rope.length c.text
  | Resolve r -> header_bytes + Value.byte_size r.value
  | Final f -> header_bytes + Rope.length f.text
  | Stop -> header_bytes
  | Data d -> seq_bytes + size d.payload
  | Ack _ -> header_bytes
  | Ping -> header_bytes

let rec pp fmt = function
  | Subtree s -> Format.fprintf fmt "Subtree(frag=%d,%dB)" s.frag s.bytes
  | Attr a -> Format.fprintf fmt "Attr(node=%d,%s=%a)" a.node a.attr Value.pp a.value
  | Code_frag c -> Format.fprintf fmt "CodeFrag(%d,%dB)" c.id (Rope.length c.text)
  | Resolve _ -> Format.fprintf fmt "Resolve"
  | Final f -> Format.fprintf fmt "Final(%dB)" (Rope.length f.text)
  | Stop -> Format.fprintf fmt "Stop"
  | Data d -> Format.fprintf fmt "Data(src=%d,seq=%d,%a)" d.src d.seq pp d.payload
  | Ack a -> Format.fprintf fmt "Ack(src=%d,seq=%d)" a.src a.seq
  | Ping -> Format.fprintf fmt "Ping"
