test/test_kastens.ml: Alcotest Array Binary_ag Expr_ag Format Grammar Kastens List Pag_analysis Pag_core Pag_grammars Printf Repmin_ag String Value
