lib/parallel/librarian.mli: Transport
