open Pag_core
open Pag_analysis
open Pag_eval
open Pag_obs

type mode = [ `Dynamic | `Combined ]

type config = {
  wc_grammar : Grammar.t;
  wc_plan : Kastens.plan option;
  wc_mode : mode;
  wc_cost : Cost.t;
  wc_use_priority : bool;
  wc_librarian : int option;
  wc_phase_label : int -> string option;
  wc_obs : Obs.ctx;
  wc_sharing : Tree.sharing option;
  wc_prov : Prov.t;
  wc_prov_dwell : bool;
  wc_engine_hook : Engine.t -> unit;
}

type task = {
  t_frag_id : int;
  t_root : Tree.t;
  t_cuts : (Tree.t * int) list;
  t_parent_machine : int;
  t_root_is_tree_root : bool;
}

type stats = {
  ws_dynamic_rules : int;
  ws_static_rules : int;
  ws_visits : int;
  ws_graph_nodes : int;
  ws_graph_edges : int;
  ws_sends : int;
  ws_spine_len : int;
  ws_idle_wait : float;
  ws_bytes_flattened : int;
}

exception Stuck of string

let stuck fmt = Printf.ksprintf (fun s -> raise (Stuck s)) fmt

(* Coordinator ordered an abort (it recovered from a fault locally). *)
exception Aborted

let zero_stats =
  {
    ws_dynamic_rules = 0;
    ws_static_rules = 0;
    ws_visits = 0;
    ws_graph_nodes = 0;
    ws_graph_edges = 0;
    ws_sends = 0;
    ws_spine_len = 0;
    ws_idle_wait = 0.0;
    ws_bytes_flattened = 0;
  }

type item =
  | IRule of int  (** rule id in the shared {!Engine} *)
  | IVisit of Tree.t * int
  | IRecv of Tree.t * string

let run_protocol (env : Transport.env) cfg task =
  let g = cfg.wc_grammar in
  let obs = cfg.wc_obs in
  let obs_on = Obs.ctx_enabled obs in
  let plan =
    match (cfg.wc_mode, cfg.wc_plan) with
    | `Combined, Some p -> Some p
    | `Combined, None -> stuck "combined mode requires an evaluation plan"
    | `Dynamic, _ -> None
  in
  (* Hash-consed evaluation: subtree memo for static visits (shared classes
     computed once on the whole tree, valid inside any fragment thanks to
     the store's slot-range contiguity check), rule memo for spine rules. *)
  let memo = Option.map Memo.create cfg.wc_sharing in
  let rmemo =
    match cfg.wc_sharing with
    | Some _ -> Some (Memo.create_rules ())
    | None -> None
  in
  (* ---- 1. Await the subtree assignment; stash early attribute msgs. ---- *)
  let stash = ref [] in
  let uid_base =
    let rec wait () =
      match env.Transport.e_recv () with
      | Message.Subtree s ->
          env.Transport.e_delay
            (float_of_int s.bytes *. cfg.wc_cost.Cost.rebuild_per_byte);
          s.uid_base
      | Message.Stop -> raise Aborted
      | other ->
          stash := other :: !stash;
          wait ()
    in
    wait ()
  in
  let uid_cursor = ref uid_base in
  let graph_t0 = if obs_on then obs.Obs.x_clock () else 0.0 in
  (* ---- 2. Fragment structure. ---- *)
  let cut_machine = Hashtbl.create 8 in
  List.iter
    (fun ((c : Tree.t), m) -> Hashtbl.replace cut_machine c.Tree.id m)
    task.t_cuts;
  let is_cut (n : Tree.t) = Hashtbl.mem cut_machine n.Tree.id in
  let store = Store.create_shared ~stop:is_cut g task.t_root in
  (* The shared engine resolves every owned rule instance once; stubs are
     excluded (their defining rules run on other machines) and spine rules
     fire through the engine's rule memo when hash-consing is on. *)
  let eng =
    Engine.create ?memo:rmemo ~rules_for:(fun n -> not (is_cut n)) g store
  in
  (* Provenance: one ring per machine, pids are machine ids, the clock is
     the transport's. The simulator's clock does not advance inside a
     firing (costs are charged after), so sim runs price durations from
     the cost model; the domains transport reads wall time twice. *)
  if Prov.enabled cfg.wc_prov then begin
    let dwell_dynamic =
      if cfg.wc_prov_dwell then Some (Cost.rule_cost cfg.wc_cost ~dynamic:true)
      else None
    and dwell_static =
      if cfg.wc_prov_dwell then Some cfg.wc_cost.Cost.static_rule else None
    in
    Engine.set_prov ~pid:env.Transport.e_id ?dwell_dynamic ?dwell_static
      ~clock:env.Transport.e_time eng cfg.wc_prov
  end;
  cfg.wc_engine_hook eng;
  (* Owned nodes: fragment nodes excluding the stubs; parents recorded. *)
  let parent = Hashtbl.create 256 in
  let owned = ref [] in
  let rec collect (n : Tree.t) =
    owned := n :: !owned;
    if not (is_cut n) then
      Array.iter
        (fun c ->
          Hashtbl.replace parent c.Tree.id n;
          collect c)
        n.Tree.children
  in
  collect task.t_root;
  let owned = List.rev !owned in
  (* ---- 3. Spine. ---- *)
  (* Membership over the fragment's node ids, packed into a bitset: the ids
     of one fragment are near-contiguous (trees are numbered in creation
     order), so one bit per id in the owned range beats hashing. *)
  let id_lo, id_hi =
    List.fold_left
      (fun (lo, hi) (n : Tree.t) -> (min lo n.Tree.id, max hi n.Tree.id))
      (max_int, min_int) owned
  in
  let spine = Pag_util.Bitset.make ~lo:id_lo ~hi:id_hi in
  (match cfg.wc_mode with
  | `Dynamic ->
      List.iter
        (fun (n : Tree.t) ->
          if n.Tree.prod <> None && not (is_cut n) then
            Pag_util.Bitset.add spine n.Tree.id)
        owned
  | `Combined ->
      List.iter
        (fun ((c : Tree.t), _) ->
          let rec up id =
            match Hashtbl.find_opt parent id with
            | None -> ()
            | Some (p : Tree.t) ->
                if not (Pag_util.Bitset.mem spine p.Tree.id) then begin
                  Pag_util.Bitset.add spine p.Tree.id;
                  up p.Tree.id
                end
          in
          up c.Tree.id)
        task.t_cuts;
      if task.t_cuts <> [] then Pag_util.Bitset.add spine task.t_root.Tree.id);
  let on_spine (n : Tree.t) = Pag_util.Bitset.mem spine n.Tree.id in
  (* ---- 4. Items. ---- *)
  let items = ref [] and n_items = ref 0 in
  (* Producers and boundary sends are keyed by the store's dense instance
     (slot) ids: flat int arrays instead of (node id, attr) hash tables. *)
  let slot_of (n : Tree.t) attr =
    Store.slot_of store n ~attr_idx:(Grammar.attr_pos g ~sym:n.Tree.sym ~attr)
  in
  let producers = Array.make (max 1 (Store.slot_count store)) (-1) in
  let new_item it =
    let id = !n_items in
    incr n_items;
    items := it :: !items;
    id
  in
  let register_producer item_id (n : Tree.t) attr =
    producers.(slot_of n attr) <- item_id
  in
  let visit_count_of sym =
    match plan with
    | Some p -> Kastens.visit_count p sym
    | None -> 0
  in
  (* Static roots: non-spine, non-stub interior children of spine nodes,
     plus the fragment root itself when there is no spine at all. *)
  let static_roots = ref [] in
  List.iter
    (fun (n : Tree.t) ->
      if on_spine n then
        Array.iter
          (fun (c : Tree.t) ->
            if c.Tree.prod <> None && (not (is_cut c)) && not (on_spine c) then
              static_roots := c :: !static_roots)
          n.Tree.children)
    owned;
  if
    cfg.wc_mode = `Combined
    && (not (on_spine task.t_root))
    && task.t_root.Tree.prod <> None
  then static_roots := [ task.t_root ];
  (* Rule items for spine nodes. *)
  List.iter
    (fun (n : Tree.t) ->
      if on_spine n then
        match n.Tree.prod with
        | None -> ()
        | Some p ->
            Array.iteri
              (fun ridx _ ->
                let rid = Engine.rid_at eng n ridx in
                let id = new_item (IRule rid) in
                producers.(Engine.target_slot eng rid) <- id)
              p.Grammar.p_rules)
    owned;
  (* Visit items for static roots. *)
  List.iter
    (fun (c : Tree.t) ->
      let m = visit_count_of c.Tree.sym in
      for v = 1 to m do
        let id = new_item (IVisit (c, v)) in
        match plan with
        | None -> assert false
        | Some p ->
            let _, syn_attrs = Kastens.visit_attrs p ~sym:c.Tree.sym ~visit:v in
            List.iter (fun a -> register_producer id c a) syn_attrs
      done)
    !static_roots;
  (* Receive items: inherited attrs of the fragment root (unless it is the
     whole tree's root), synthesized attrs of every stub. *)
  let root_sym = Grammar.symbol g task.t_root.Tree.sym in
  if task.t_root_is_tree_root then
    Array.iter
      (fun (a : Grammar.attr_decl) ->
        if a.a_kind = Grammar.Inh then
          stuck "the start symbol has inherited attribute %S with no producer"
            a.a_name)
      root_sym.Grammar.s_attrs
  else
    Array.iter
      (fun (a : Grammar.attr_decl) ->
        if a.a_kind = Grammar.Inh then begin
          let id = new_item (IRecv (task.t_root, a.a_name)) in
          register_producer id task.t_root a.a_name
        end)
      root_sym.Grammar.s_attrs;
  List.iter
    (fun ((c : Tree.t), _) ->
      Array.iter
        (fun (a : Grammar.attr_decl) ->
          if a.a_kind = Grammar.Syn then begin
            let id = new_item (IRecv (c, a.a_name)) in
            register_producer id c a.a_name
          end)
        (Grammar.symbol g c.Tree.sym).Grammar.s_attrs)
    task.t_cuts;
  let items = Array.of_list (List.rev !items) in
  let total = Array.length items in
  (* ---- 5. Wiring. ---- *)
  let waiting = Array.make total 0 in
  let consumers = Array.make total [] in
  let edge_count = ref 0 in
  let add_edge ~from ~on =
    consumers.(from) <- on :: consumers.(from);
    waiting.(on) <- waiting.(on) + 1;
    incr edge_count
  in
  let producer_of (n : Tree.t) attr =
    if n.Tree.prod = None then None (* terminal: always available *)
    else
      match producers.(slot_of n attr) with
      | -1 -> stuck "no producer for %s.%s (node %d)" n.Tree.sym attr n.Tree.id
      | id -> Some id
  in
  Array.iteri
    (fun id it ->
      match it with
      | IRule rid ->
          List.iter
            (fun (dn, dattr) ->
              match producer_of dn dattr with
              | Some p -> add_edge ~from:p ~on:id
              | None -> ())
            (Store.rule_deps store (Engine.node_of eng rid)
               (Engine.rule_of eng rid))
      | IVisit (c, v) ->
          (match plan with
          | None -> assert false
          | Some p ->
              let inh_attrs, _ = Kastens.visit_attrs p ~sym:c.Tree.sym ~visit:v in
              List.iter
                (fun a ->
                  match producer_of c a with
                  | Some pr -> add_edge ~from:pr ~on:id
                  | None -> ())
                inh_attrs);
          (* IVisit items of one static root are consecutive, so the
             previous visit is the previous item. *)
          if v > 1 then add_edge ~from:(id - 1) ~on:id
      | IRecv _ -> ())
    items;
  (* ---- 6. Boundary sends. ---- *)
  let sends = Array.make (max 1 (Store.slot_count store)) (-1) in
  Array.iter
    (fun (a : Grammar.attr_decl) ->
      if a.a_kind = Grammar.Syn then
        sends.(slot_of task.t_root a.a_name) <- task.t_parent_machine)
    root_sym.Grammar.s_attrs;
  List.iter
    (fun ((c : Tree.t), machine) ->
      Array.iter
        (fun (a : Grammar.attr_decl) ->
          if a.a_kind = Grammar.Inh then sends.(slot_of c a.a_name) <- machine)
        (Grammar.symbol g c.Tree.sym).Grammar.s_attrs)
    task.t_cuts;
  let frag_seq = ref 0 in
  let alloc_frag () =
    let id = ((task.t_frag_id + 1) * 100_000) + !frag_seq in
    incr frag_seq;
    id
  in
  let n_sends = ref 0 in
  let bytes_flattened = ref 0 in
  let bytes_hist =
    Obs.Metrics.histogram obs.Obs.x_metrics "net.bytes_per_attr"
  in
  let send_instance (n : Tree.t) attr dst =
    let v = Store.get store n attr in
    let v =
      match (cfg.wc_librarian, v) with
      | Some lib, Value.Ext (Codestr.V c)
        when n.Tree.id = task.t_root.Tree.id && Codestr.length c > 0 ->
          (* string librarian: ship the text once, pass up a descriptor *)
          let desc, frags = Codestr.extract_texts ~alloc:alloc_frag c in
          List.iter
            (fun (id, text) ->
              incr n_sends;
              let m = Message.Code_frag { id; text } in
              bytes_flattened := !bytes_flattened + Message.size m;
              env.Transport.e_send ~dst:lib m)
            frags;
          Codestr.value desc
      | _ -> v
    in
    incr n_sends;
    let m = Message.Attr { node = n.Tree.id; attr; value = v } in
    let sz = Message.size m in
    bytes_flattened := !bytes_flattened + sz;
    if obs_on then Obs.Metrics.observe bytes_hist (float_of_int sz);
    env.Transport.e_send ~dst m
  in
  (* ---- 7. Charge graph-construction cost. ---- *)
  env.Transport.e_delay
    ((float_of_int total *. cfg.wc_cost.Cost.build_node)
    +. (float_of_int !edge_count *. cfg.wc_cost.Cost.build_edge));
  if obs_on then
    Obs.span obs.Obs.x_rec ~pid:obs.Obs.x_pid ~t0:graph_t0
      ~t1:(obs.Obs.x_clock ()) "graph-build";
  (* ---- 8. Execution. ---- *)
  let hi = Queue.create () and lo = Queue.create () in
  let is_priority_item = function
    | IRule rid ->
        let tnode, tattr = Engine.target_instance eng rid in
        Grammar.is_priority g ~sym:tnode.Tree.sym ~attr:tattr
    | IVisit _ | IRecv _ -> false
  in
  let enqueue id =
    if cfg.wc_use_priority && is_priority_item items.(id) then Queue.add id hi
    else Queue.add id lo
  in
  Array.iteri
    (fun id it ->
      match it with
      | IRecv _ -> ()
      | IRule _ | IVisit _ -> if waiting.(id) = 0 then enqueue id)
    items;
  let completed = ref 0 in
  let dynamic_rules = ref 0
  and static_rules = ref 0
  and visits = ref 0 in
  let marked = Hashtbl.create 4 in
  let products_of id =
    match items.(id) with
    | IRule rid -> [ Engine.target_instance eng rid ]
    | IVisit (c, v) -> (
        match plan with
        | None -> assert false
        | Some p ->
            let _, syn_attrs = Kastens.visit_attrs p ~sym:c.Tree.sym ~visit:v in
            List.map (fun a -> (c, a)) syn_attrs)
    | IRecv (n, a) -> [ (n, a) ]
  in
  let complete id =
    incr completed;
    List.iter
      (fun ((n : Tree.t), attr) ->
        match sends.(slot_of n attr) with
        | -1 -> ()
        | dst -> send_instance n attr dst)
      (products_of id);
    List.iter
      (fun c ->
        waiting.(c) <- waiting.(c) - 1;
        if waiting.(c) = 0 then enqueue c)
      consumers.(id)
  in
  let execute id =
    match items.(id) with
    | IRule rid ->
        Uid.with_counter uid_cursor (fun () -> Engine.fire eng rid);
        env.Transport.e_delay (Cost.rule_cost cfg.wc_cost ~dynamic:true);
        incr dynamic_rules;
        if obs_on then begin
          let tnode, tattr = Engine.target_instance eng rid in
          Obs.instant obs.Obs.x_rec ~pid:obs.Obs.x_pid
            ~t:(obs.Obs.x_clock ())
            (Printf.sprintf "dyn-rule %s.%s" tnode.Tree.sym tattr)
        end
    | IVisit (c, v) ->
        (match cfg.wc_phase_label v with
        | Some lbl when not (Hashtbl.mem marked v) ->
            Hashtbl.replace marked v ();
            env.Transport.e_mark lbl
        | _ -> ());
        let visit_t0 = if obs_on then obs.Obs.x_clock () else 0.0 in
        let nv, ne =
          match plan with
          | None -> assert false
          | Some p ->
              Uid.with_counter uid_cursor (fun () ->
                  Static_eval.visit ?memo p eng c v)
        in
        env.Transport.e_delay (Cost.visit_cost cfg.wc_cost ~visits:nv ~evals:ne);
        if obs_on then
          Obs.span obs.Obs.x_rec ~pid:obs.Obs.x_pid ~t0:visit_t0
            ~t1:(obs.Obs.x_clock ())
            (Printf.sprintf "visit %s/%d" c.Tree.sym v);
        static_rules := !static_rules + ne;
        visits := !visits + nv
    | IRecv (n, a) -> stuck "receive item %s.%s executed locally" n.Tree.sym a
  in
  let handle_msg = function
    | Message.Attr { node; attr; value } -> (
        match Store.find_node store node with
        | None -> stuck "received attribute for unknown node %d" node
        | Some n -> (
            Store.set store n attr value;
            match producers.(slot_of n attr) with
            | -1 -> stuck "no receive item for %s.%s" n.Tree.sym attr
            | id -> complete id))
    | Message.Stop -> raise Aborted
    | other -> stuck "unexpected message %s" (Format.asprintf "%a" Message.pp other)
  in
  List.iter handle_msg (List.rev !stash);
  stash := [];
  let idle_wait = ref 0.0 in
  let eval_t0 = if obs_on then obs.Obs.x_clock () else 0.0 in
  let rec loop () =
    if !completed < total then begin
      let next =
        match Queue.take_opt hi with
        | Some id -> Some id
        | None -> Queue.take_opt lo
      in
      match next with
      | Some id ->
          execute id;
          complete id;
          loop ()
      | None ->
          let w0 = env.Transport.e_time () in
          let msg = env.Transport.e_recv () in
          idle_wait := !idle_wait +. (env.Transport.e_time () -. w0);
          handle_msg msg;
          loop ()
    end
  in
  loop ();
  let left = Store.missing store in
  if left > 0 then stuck "%d attribute instances unevaluated in fragment %d" left task.t_frag_id;
  env.Transport.e_flush ();
  let spine_len = Pag_util.Bitset.cardinal spine in
  if obs_on then begin
    Obs.span obs.Obs.x_rec ~pid:obs.Obs.x_pid ~t0:eval_t0
      ~t1:(obs.Obs.x_clock ()) "evaluate";
    let reg = obs.Obs.x_metrics in
    let bump name n = Obs.Metrics.add (Obs.Metrics.counter reg name) n in
    bump "worker.dynamic_rules" !dynamic_rules;
    bump "worker.static_rules" !static_rules;
    bump "worker.visits" !visits;
    bump "worker.sends" !n_sends;
    bump "worker.graph_nodes" total;
    bump "worker.graph_edges" !edge_count;
    bump "worker.spine_nodes" spine_len;
    bump "net.bytes" !bytes_flattened;
    (match memo with
    | Some mm ->
        let st = Memo.stats mm in
        bump "eval.memo_hits" st.Memo.st_hits;
        bump "eval.memo_misses" st.Memo.st_misses;
        bump "eval.memo_replayed_slots" st.Memo.st_replayed_slots
    | None -> ());
    (match rmemo with
    | Some m ->
        let h, ms = Memo.rules_stats m in
        bump "eval.rule_memo_hits" h;
        bump "eval.rule_memo_misses" ms
    | None -> ());
    Obs.Metrics.add_gauge reg "store.reads" (float_of_int (Store.reads store));
    Obs.Metrics.add_gauge reg "store.writes" (float_of_int (Store.sets store));
    Obs.Metrics.add_gauge reg "worker.idle_wait" !idle_wait
  end;
  {
    ws_dynamic_rules = !dynamic_rules;
    ws_static_rules = !static_rules;
    ws_visits = !visits;
    ws_graph_nodes = total;
    ws_graph_edges = !edge_count;
    ws_sends = !n_sends;
    ws_spine_len = spine_len;
    ws_idle_wait = !idle_wait;
    ws_bytes_flattened = !bytes_flattened;
  }

(* A [Stop] at any point means the coordinator gave up on the parallel run
   and recovered locally; the worker abandons its fragment quietly. *)
let run env cfg task =
  match run_protocol env cfg task with
  | stats -> stats
  | exception Aborted -> zero_stats
