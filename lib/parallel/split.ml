open Pag_core

type fragment = {
  fr_id : int;
  fr_root : Tree.t;
  fr_parent : int option;
  fr_bytes : int;
}

type work = {
  w_id : int;
  w_root : Tree.t;
  mutable w_parent : int option;
  mutable w_cuts : Tree.t list;
}

type plan = {
  frags : fragment array;
  cut_to_frag : (int, int) Hashtbl.t;
  cut_lists : int list array;
}

let node_bytes node =
  8
  + List.fold_left
      (fun a (_, v) -> a + Value.byte_size v)
      0 node.Tree.term_attrs

let decompose g tree ~machines ~granularity =
  if machines < 1 then invalid_arg "Split.decompose: machines < 1";
  if granularity <= 0.0 then invalid_arg "Split.decompose: granularity <= 0";
  (* The split algorithm wants preorder indices (every subtree is an
     interval [i, i + count)), but it must not renumber the tree to get
     them: an edit session re-decomposes its resident tree between edits,
     and that tree's ids are the evaluator store's node identity. Trees
     arriving unnumbered (or with duplicate ids) are numbered once; on an
     already uniquely-numbered tree the ids are left alone and a side
     table maps id -> preorder index. *)
  let ids_unique =
    let seen = Hashtbl.create 256 in
    let ok = ref true in
    Tree.iter
      (fun nd ->
        if nd.Tree.id < 0 || Hashtbl.mem seen nd.Tree.id then ok := false
        else Hashtbl.add seen nd.Tree.id ())
      tree;
    !ok
  in
  if not ids_unique then ignore (Tree.number tree);
  let n = Tree.size tree in
  let nodes = Array.make n tree in
  let pre_tbl = Hashtbl.create n in
  let next = ref 0 in
  Tree.iter
    (fun nd ->
      nodes.(!next) <- nd;
      Hashtbl.replace pre_tbl nd.Tree.id !next;
      incr next)
    tree;
  let pre (nd : Tree.t) = Hashtbl.find pre_tbl nd.Tree.id in
  let counts = Array.make n 1 in
  let bytes = Array.make n 0 in
  for i = n - 1 downto 0 do
    bytes.(i) <- node_bytes nodes.(i);
    Array.iter
      (fun c ->
        counts.(i) <- counts.(i) + counts.(pre c);
        bytes.(i) <- bytes.(i) + bytes.(pre c))
      nodes.(i).Tree.children
  done;
  let splittable i =
    let nd = nodes.(i) in
    nd.Tree.prod <> None
    &&
    match (Grammar.symbol g nd.Tree.sym).Grammar.s_split with
    | Some min_bytes ->
        float_of_int bytes.(i) >= float_of_int min_bytes *. granularity
    | None -> false
  in
  let in_subtree ~root i = i >= root && i < root + counts.(root) in
  let works = ref [ { w_id = 0; w_root = tree; w_parent = None; w_cuts = [] } ] in
  let nfrags = ref 1 in
  let cut_bytes cuts under =
    List.fold_left
      (fun a (c : Tree.t) ->
        if in_subtree ~root:under (pre c) then a + bytes.(pre c) else a)
      0 cuts
  in
  let residual w =
    bytes.(pre w.w_root) - cut_bytes w.w_cuts (pre w.w_root)
  in
  (* Ideal fragment size: machines equal shares of the whole tree. *)
  let share = float_of_int bytes.(pre tree) /. float_of_int machines in
  (* Candidate cut inside fragment [w]: any splittable node that is not the
     fragment root and not inside an existing cut. A candidate may contain
     existing cuts: those child fragments are re-parented to the new
     fragment, which is how nested decompositions (figure 7) arise. The best
     candidate leaves the fragment with about one machine share: cut the
     node whose residual is closest to [residual w - share]. *)
  let best_candidate w =
    let root_id = pre w.w_root in
    let cut_ids = List.map (fun (c : Tree.t) -> pre c) w.w_cuts in
    let target =
      Float.max (share /. 2.0) (float_of_int (residual w) -. share)
    in
    let best = ref None in
    let i = ref (root_id + 1) in
    let stop = root_id + counts.(root_id) in
    while !i < stop do
      if List.mem !i cut_ids then
        (* skip the whole cut subtree: it belongs to another fragment *)
        i := !i + counts.(!i)
      else begin
        if splittable !i then begin
          let res = bytes.(!i) - cut_bytes w.w_cuts !i in
          let score = Float.abs (float_of_int res -. target) in
          match !best with
          | Some (s, _) when s <= score -> ()
          | _ -> best := Some (score, !i)
        end;
        incr i
      end
    done;
    Option.map snd !best
  in
  let continue_splitting = ref true in
  while !nfrags < machines && !continue_splitting do
    (* largest-residual fragment that still has a candidate *)
    let sorted =
      List.sort (fun a b -> compare (residual b) (residual a)) !works
    in
    let rec try_frags = function
      | [] -> continue_splitting := false
      | w :: rest when float_of_int (residual w) <= 1.15 *. share ->
          (* splitting an already share-sized fragment only adds overhead *)
          ignore w;
          try_frags rest
      | w :: rest -> (
          match best_candidate w with
          | None -> try_frags rest
          | Some cut_id ->
              let cut_node = nodes.(cut_id) in
              let moved, kept =
                List.partition
                  (fun (c : Tree.t) -> in_subtree ~root:cut_id (pre c))
                  w.w_cuts
              in
              let nw =
                {
                  w_id = !nfrags;
                  w_root = cut_node;
                  w_parent = Some w.w_id;
                  w_cuts = moved;
                }
              in
              (* fragments whose stub moved under the new fragment now hang
                 off it instead of off [w] *)
              List.iter
                (fun (c : Tree.t) ->
                  List.iter
                    (fun w' ->
                      if w'.w_root.Tree.id = c.Tree.id then
                        w'.w_parent <- Some nw.w_id)
                    !works)
                moved;
              w.w_cuts <- cut_node :: kept;
              works := nw :: !works;
              incr nfrags)
    in
    try_frags sorted
  done;
  let works = List.sort (fun a b -> compare a.w_id b.w_id) !works in
  let frags =
    Array.of_list
      (List.map
         (fun w ->
           {
             fr_id = w.w_id;
             fr_root = w.w_root;
             fr_parent = w.w_parent;
             fr_bytes = residual w;
           })
         works)
  in
  let cut_to_frag = Hashtbl.create 16 in
  let cut_lists = Array.make (Array.length frags) [] in
  List.iter
    (fun w ->
      List.iter
        (fun (c : Tree.t) ->
          let owner =
            List.find (fun w' -> w'.w_root.Tree.id = c.Tree.id) works
          in
          Hashtbl.replace cut_to_frag c.Tree.id owner.w_id;
          cut_lists.(w.w_id) <- c.Tree.id :: cut_lists.(w.w_id))
        w.w_cuts)
    works;
  { frags; cut_to_frag; cut_lists }

let fragments p = p.frags

(* ------------------------- wire format ------------------------- *)

(* Real linearization of a fragment for the DAG-aware transport. Both ends
   hold the (static) grammar, so nodes travel as production / symbol names
   plus terminal attribute literals; what makes the format DAG-native is
   class shipping: the first occurrence of a repeated subtree on a given
   destination is preceded by a definition marker binding its shape-class
   id, and every later occurrence shipped to the same machine is a 5-byte
   backreference to that class — each class body crosses the wire once per
   machine, not once per occurrence. An occurrence only participates when
   its id range contains no cut (a cut makes occurrences structurally
   different on this machine even when the full subtrees are equal); cut
   children travel as stubs, as in the plain format.

   [dag_bytes] is the length of this encoding — the priced and the shipped
   representation are the same bytes. *)

exception Malformed of string

let add_u16 b n =
  Buffer.add_char b (Char.chr (n land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xff))

let add_u32 b n =
  add_u16 b (n land 0xffff);
  add_u16 b ((n lsr 16) land 0xffff)

let add_i64 b n =
  add_u32 b (n land 0xffffffff);
  add_u32 b ((n asr 32) land 0xffffffff)

let add_str16 b s =
  if String.length s > 0xffff then raise (Malformed "name too long");
  add_u16 b (String.length s);
  Buffer.add_string b s

(* Terminal attributes are parser literals: the structured constructors
   cover them. [Tab]/[Ext] values are evaluator-made and never occur in a
   parse tree. *)
let rec enc_value b (v : Value.t) =
  match v with
  | Value.Unit -> Buffer.add_char b 'u'
  | Value.Bool x ->
      Buffer.add_char b 'b';
      Buffer.add_char b (if x then '\001' else '\000')
  | Value.Int n ->
      Buffer.add_char b 'i';
      add_i64 b n
  | Value.Str r ->
      Buffer.add_char b 's';
      let s = Pag_util.Rope.to_string r in
      add_u32 b (String.length s);
      Buffer.add_string b s
  | Value.List vs ->
      Buffer.add_char b 'l';
      add_u32 b (List.length vs);
      List.iter (enc_value b) vs
  | Value.Pair (x, y) ->
      Buffer.add_char b 'p';
      enc_value b x;
      enc_value b y
  | Value.Tab _ | Value.Ext _ ->
      invalid_arg "Split.encode: non-literal terminal attribute"

let encode ?sharing p (f : fragment) =
  let cuts = p.cut_lists.(f.fr_id) in
  (* the class of [n] when eligible for once-per-machine shipping:
     multiply occurring, at least two nodes (a keyword leaf is cheaper to
     reship than to reference — a backreference is 5 bytes, its body
     little more), and an id range containing no cut *)
  let share_class (n : Tree.t) =
    match sharing with
    | None -> None
    | Some (sh : Tree.sharing) ->
        let c = sh.Tree.sh_class.(n.Tree.id) in
        let hi = n.Tree.id + sh.Tree.sh_size.(c) in
        if
          sh.Tree.sh_occurs.(c) > 1
          && sh.Tree.sh_size.(c) >= 2
          && List.for_all (fun cid -> cid < n.Tree.id || cid >= hi) cuts
        then Some c
        else None
  in
  let b = Buffer.create 256 in
  (* class -> already shipped to this destination *)
  let seen = Hashtbl.create 64 in
  let rec go (n : Tree.t) =
    if List.mem n.Tree.id cuts then begin
      Buffer.add_char b 'C';
      add_u32 b n.Tree.id;
      add_str16 b n.Tree.sym
    end
    else
      let body () =
        match n.Tree.prod with
        | Some pr ->
            Buffer.add_char b 'P';
            add_str16 b pr.Grammar.p_name;
            add_u16 b (Array.length n.Tree.children);
            Array.iter go n.Tree.children
        | None ->
            Buffer.add_char b 'L';
            add_str16 b n.Tree.sym;
            add_u16 b (List.length n.Tree.term_attrs);
            List.iter
              (fun (a, v) ->
                add_str16 b a;
                enc_value b v)
              n.Tree.term_attrs
      in
      match share_class n with
      | Some c when Hashtbl.mem seen c ->
          Buffer.add_char b 'R';
          add_u32 b c
      | Some c ->
          Hashtbl.replace seen c ();
          Buffer.add_char b 'D';
          add_u32 b c;
          body ()
      | None -> body ()
  in
  go f.fr_root;
  Buffer.contents b

let decode g s =
  let pos = ref 0 in
  let u8 () =
    if !pos >= String.length s then raise (Malformed "truncated");
    let c = s.[!pos] in
    incr pos;
    c
  in
  let u16 () =
    let a = Char.code (u8 ()) in
    a lor (Char.code (u8 ()) lsl 8)
  in
  let u32 () =
    let a = u16 () in
    a lor (u16 () lsl 16)
  in
  let i64 () =
    let a = u32 () in
    let hi = u32 () in
    a lor (hi lsl 32)
  in
  let strn n =
    if !pos + n > String.length s then raise (Malformed "truncated string");
    let r = String.sub s !pos n in
    pos := !pos + n;
    r
  in
  let str16 () = strn (u16 ()) in
  let rec value () =
    match u8 () with
    | 'u' -> Value.Unit
    | 'b' -> Value.Bool (u8 () <> '\000')
    | 'i' -> Value.Int (i64 ())
    | 's' -> Value.str (strn (u32 ()))
    | 'l' ->
        let k = u32 () in
        Value.List (List.init k (fun _ -> value ()))
    | 'p' ->
        let x = value () in
        let y = value () in
        Value.Pair (x, y)
    | c -> raise (Malformed (Printf.sprintf "bad value tag %C" c))
  in
  (* class id -> first decoded occurrence; backreferences expand to fresh
     copies (the receiver materializes a tree, not a graph) *)
  let classes : (int, Tree.t) Hashtbl.t = Hashtbl.create 16 in
  let rec copy (n : Tree.t) =
    match n.Tree.prod with
    | Some pr ->
        Tree.node g pr.Grammar.p_name
          (Array.to_list (Array.map copy n.Tree.children))
    | None -> Tree.leaf g n.Tree.sym n.Tree.term_attrs
  in
  let rec node () =
    match u8 () with
    | 'D' ->
        let c = u32 () in
        let t = node () in
        Hashtbl.replace classes c t;
        t
    | 'R' -> (
        let c = u32 () in
        match Hashtbl.find_opt classes c with
        | Some t -> copy t
        | None -> raise (Malformed "backreference before definition"))
    | 'P' ->
        let name = str16 () in
        let k = u16 () in
        Tree.node g name (List.init k (fun _ -> node ()))
    | 'L' ->
        let sym = str16 () in
        let k = u16 () in
        Tree.leaf g sym
          (List.init k (fun _ ->
               let a = str16 () in
               (a, value ())))
    | 'C' ->
        (* Childless stand-in for the cut subtree (its symbol is a
           nonterminal, so [Tree.leaf] would reject it); the stub records
           the cut node's global id for the reassembly protocol. *)
        let id = u32 () in
        let sym = str16 () in
        {
          Tree.id;
          sym;
          sym_id = Grammar.sym_id g sym;
          prod = None;
          children = [||];
          term_attrs = [ ("cut", Value.Int id) ];
        }
    | c -> raise (Malformed (Printf.sprintf "bad node tag %C" c))
  in
  let t = node () in
  if !pos <> String.length s then raise (Malformed "trailing bytes");
  t

let dag_bytes p (sh : Tree.sharing) (f : fragment) =
  String.length (encode ~sharing:sh p f)

let fragment_of_cut_node p node_id = Hashtbl.find_opt p.cut_to_frag node_id

(* The fragment whose machine evaluates [node]: reachable from the
   fragment root without crossing into a cut stub (a stub is the next
   fragment's root, so the deepest enclosing fragment wins). Physical
   equality, not ids — an edit session grafts replacement nodes carrying
   ids outside the plan's original preorder range, and those are only
   findable under the fragment that physically contains them. *)
let owner_of p (node : Tree.t) =
  let rec find i =
    if i >= Array.length p.frags then None
    else begin
      let f = p.frags.(i) in
      let cuts = p.cut_lists.(f.fr_id) in
      let rec go n =
        n == node
        || Array.exists
             (fun (c : Tree.t) -> (not (List.mem c.Tree.id cuts)) && go c)
             n.Tree.children
      in
      if go f.fr_root then Some f.fr_id else find (i + 1)
    end
  in
  find 0

let cuts_of p frag_id = p.cut_lists.(frag_id)

let count p = Array.length p.frags

let pp fmt p =
  let children_of id =
    Array.to_list p.frags
    |> List.filter (fun f -> f.fr_parent = Some id)
    |> List.map (fun f -> f.fr_id)
  in
  let rec go indent id =
    let f = p.frags.(id) in
    Format.fprintf fmt "%sfragment %d: %s, %d bytes (node %d)@,"
      (String.make indent ' ') id f.fr_root.Tree.sym f.fr_bytes
      f.fr_root.Tree.id;
    List.iter (go (indent + 2)) (children_of id)
  in
  Format.fprintf fmt "@[<v>";
  go 0 0;
  Format.fprintf fmt "@]"
