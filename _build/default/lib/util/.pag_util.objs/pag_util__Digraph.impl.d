lib/util/digraph.ml: Array Format List
