(** Ropes: strings as binary trees with the text in the leaves.

    This is the string representation of Boehm & Zwaenepoel (1987), section
    4.3: concatenation is a constant-time operation, which makes building a
    large code attribute from many fragments cheap, and it is the data type
    whose conversion function is replaced to implement the string librarian.
    Concatenation merges short edge leaves and rebuilds the tree when its
    depth exceeds the Fibonacci balance bound, so long fragment folds keep
    the depth logarithmic at O(1) amortized cost per concat; all traversals
    are stack-safe regardless. *)

type t

val empty : t

val of_string : string -> t

(** [concat a b] is the rope denoting the text of [a] followed by the text of
    [b]. O(1). *)
val concat : t -> t -> t

(** [concat_list rs] concatenates left to right, producing a balanced rope. *)
val concat_list : t list -> t

val is_empty : t -> bool

(** Number of characters. O(1). *)
val length : t -> int

(** Height of the underlying tree; a leaf has depth 0. *)
val depth : t -> int

(** Number of leaves holding at least one character. *)
val leaf_count : t -> int

(** Flatten to a string. O(n), stack-safe. *)
val to_string : t -> string

(** [iter_chunks f r] applies [f] to every non-empty leaf, left to right. *)
val iter_chunks : (string -> unit) -> t -> unit

val fold_chunks : ('a -> string -> 'a) -> 'a -> t -> 'a

(** Content equality, without flattening either rope. Physically equal
    ropes (e.g. interned ones) short-circuit in O(1). *)
val equal : t -> t -> bool

(** {1 Hash-consing}

    {!intern} returns the canonical representative of a rope from the
    process-wide weak arena ({!Hcons}): leaves are shared by content,
    interior nodes by the identity of their canonical children. The
    canonical form preserves the rope's shape, so ropes built by the same
    sequence of operations — identical code attributes of identical
    subtrees, say — become physically equal, while content-equal ropes of
    different shapes merely stay structurally equal. *)

val intern : t -> t

(** Structural hash, consistent with shape-preserving interning (physically
    equal ropes hash equally). O(1) on interned ropes; interns first
    otherwise. *)
val hash : t -> int

(** Wire size of the rope encoded as a DAG between two arena-aware peers:
    each distinct node of the canonical form is counted once and later
    occurrences cost a fixed backreference (taken only when cheaper than
    the repeated text, so a sharing-free rope costs exactly {!length}).
    O(distinct nodes), not O({!length}). *)
val dag_size : t -> int

(** Lexicographic content comparison. *)
val compare : t -> t -> int

(** [output oc r] writes the text of [r] to [oc] chunk by chunk. *)
val output : out_channel -> t -> unit

val pp : Format.formatter -> t -> unit
