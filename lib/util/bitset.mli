(** Dense bitset over a fixed integer range.

    A membership set for ids drawn from a known interval [lo..hi] — e.g.
    tree-node ids inside one fragment — packed one bit per id into an int
    array. Compared to an [(int, unit) Hashtbl.t] it allocates once, never
    rehashes, and [mem] is two shifts and a load.

    Ids outside the range: [mem] answers [false]; [add] raises
    [Invalid_argument]. *)

type t

(** The empty set over [lo..hi] inclusive. [hi < lo] yields a set where
    every [mem] is [false] and every [add] raises. *)
val make : lo:int -> hi:int -> t

(** Raises [Invalid_argument] outside the range. Idempotent. *)
val add : t -> int -> unit

val mem : t -> int -> bool

(** Number of distinct ids added. O(range / word size). *)
val cardinal : t -> int
