(* Semantic rules for expressions and lvalues of the Pascal attribute
   grammar. Expressions synthesize [ty], [code] (pushes the value), [addr]
   (a pair: is-it-an-lvalue flag and address-pushing code, for var
   arguments) and [errs]. Lvalues synthesize [ty], [acode] (push address),
   [vcode] (push value), [writable] and [errs]. *)

open Pag_core
open Ast
open Ag_dsl
open Vax.Isa

let aty = Pvalue.as_ty

let no_addr = Value.Pair (Value.Bool false, Cg.value Cg.empty)

(* Resolve a name as a variable-ish entry. A routine name resolves to its
   result slot when one is in scope (assignment to the function name inside
   its own body). *)
let resolve_var ~ctx envv name =
  match lookup_env ~ctx envv name with
  | Some v -> (
      match Pvalue.as_info ~ctx v with
      | Pvalue.IRoutine _ as rt -> (
          match lookup_env ~ctx envv (name ^ "$result") with
          | Some rv -> Some (Pvalue.as_info ~ctx rv)
          | None -> Some rt)
      | other -> Some other)
  | None -> None

let int_binop pname ops =
  let open Grammar in
  let name = pname in
  prod pname "expr" [ "expr"; "expr" ]
    (down [ 1; 2 ]
    @ [
        r (lhs "ty") [] (fun _ -> Pvalue.ty TInt);
        r (lhs "addr") [] (fun _ -> no_addr);
        r (lhs "code")
          [ rhs 1 "code"; rhs 2 "code" ]
          (fun args ->
            code
              (Cg.cconcat
                 [
                   as_code ~ctx:name args.(0);
                   as_code ~ctx:name args.(1);
                   Cg.asm (Cg.binop ops);
                 ]));
        errs_up [ 1; 2 ] ~extra:[ rhs 1 "ty"; rhs 2 "ty" ] ~extra_fn:(fun args ->
            want_ty name TInt (aty ~ctx:name args.(2))
            @ want_ty name TInt (aty ~ctx:name args.(3)));
      ])

let compare_op pname branch =
  let open Grammar in
  let name = pname in
  prod ~labels:2 pname "expr" [ "expr"; "expr" ]
    (down [ 1; 2 ]
    @ [
        r (lhs "ty") [] (fun _ -> Pvalue.ty TBool);
        r (lhs "addr") [] (fun _ -> no_addr);
        rl (lhs "code")
          [ rhs 1 "code"; rhs 2 "code" ]
          (fun ~labels args ->
            let l_true = Cg.lab labels.(0) and l_end = Cg.lab labels.(1) in
            code
              (Cg.cconcat
                 [
                   as_code ~ctx:name args.(0);
                   as_code ~ctx:name args.(1);
                   Cg.asm (Cg.compare_code branch l_true l_end);
                 ]));
        errs_up [ 1; 2 ] ~extra:[ rhs 1 "ty"; rhs 2 "ty" ] ~extra_fn:(fun args ->
            let t1 = aty ~ctx:name args.(2) and t2 = aty ~ctx:name args.(3) in
            if comparable t1 t2 && Ast.is_scalar t1 then []
            else
              [
                Printf.sprintf "cannot compare %s with %s" (Ast.ty_to_string t1)
                  (Ast.ty_to_string t2);
              ]);
      ])

let specs : prod_spec list =
  let open Grammar in
  [
    (* ---------------- literals ---------------- *)
    prod "e_int" "expr" [ "NUMT" ]
      [
        r (lhs "ty") [] (fun _ -> Pvalue.ty TInt);
        r (lhs "addr") [] (fun _ -> no_addr);
        r (lhs "code")
          [ rhs 1 "value" ]
          (fun args -> code (Cg.asm [ Pushl (Imm (as_int ~ctx:"int" args.(0))) ]));
        r (lhs "errs") [] (fun _ -> v_list []);
      ];
    prod "e_char" "expr" [ "CHART" ]
      [
        r (lhs "ty") [] (fun _ -> Pvalue.ty TChar);
        r (lhs "addr") [] (fun _ -> no_addr);
        r (lhs "code")
          [ rhs 1 "value" ]
          (fun args -> code (Cg.asm [ Pushl (Imm (as_int ~ctx:"char" args.(0))) ]));
        r (lhs "errs") [] (fun _ -> v_list []);
      ];
    prod "e_true" "expr" []
      [
        r (lhs "ty") [] (fun _ -> Pvalue.ty TBool);
        r (lhs "addr") [] (fun _ -> no_addr);
        r (lhs "code") [] (fun _ -> code (Cg.asm [ Pushl (Imm 1) ]));
        r (lhs "errs") [] (fun _ -> v_list []);
      ];
    prod "e_false" "expr" []
      [
        r (lhs "ty") [] (fun _ -> Pvalue.ty TBool);
        r (lhs "addr") [] (fun _ -> no_addr);
        r (lhs "code") [] (fun _ -> code (Cg.asm [ Pushl (Imm 0) ]));
        r (lhs "errs") [] (fun _ -> v_list []);
      ];
    (* ---------------- variables ---------------- *)
    prod "e_lval" "expr" [ "lvalue" ]
      (down [ 1 ]
      @ [
          r (lhs "ty") [ rhs 1 "ty" ] id;
          r (lhs "code") [ rhs 1 "vcode" ] id;
          r (lhs "addr")
            [ rhs 1 "writable"; rhs 1 "acode" ]
            (fun args -> Value.Pair (args.(0), args.(1)));
          errs_up [ 1 ];
        ]);
    (* ---------------- arithmetic ---------------- *)
    int_binop "e_add" [ Addl2 (Reg r1, Reg r0) ];
    int_binop "e_sub" [ Subl2 (Reg r1, Reg r0) ];
    int_binop "e_mul" [ Mull2 (Reg r1, Reg r0) ];
    int_binop "e_div" [ Divl2 (Reg r1, Reg r0) ];
    int_binop "e_mod"
      [
        Divl3 (Reg r1, Reg r0, Reg r2);
        Mull2 (Reg r1, Reg r2);
        Subl2 (Reg r2, Reg r0);
      ];
    (* ---------------- boolean ---------------- *)
    prod "e_and" "expr" [ "expr"; "expr" ]
      (down [ 1; 2 ]
      @ [
          r (lhs "ty") [] (fun _ -> Pvalue.ty TBool);
          r (lhs "addr") [] (fun _ -> no_addr);
          r (lhs "code")
            [ rhs 1 "code"; rhs 2 "code" ]
            (fun args ->
              code
                (Cg.cconcat
                   [
                     as_code ~ctx:"and" args.(0);
                     as_code ~ctx:"and" args.(1);
                     Cg.asm (Cg.binop [ Mull2 (Reg r1, Reg r0) ]);
                   ]));
          errs_up [ 1; 2 ] ~extra:[ rhs 1 "ty"; rhs 2 "ty" ] ~extra_fn:(fun args ->
              want_ty "and" TBool (aty ~ctx:"and" args.(2))
              @ want_ty "and" TBool (aty ~ctx:"and" args.(3)));
        ]);
    prod ~labels:2 "e_or" "expr" [ "expr"; "expr" ]
      (down [ 1; 2 ]
      @ [
          r (lhs "ty") [] (fun _ -> Pvalue.ty TBool);
          r (lhs "addr") [] (fun _ -> no_addr);
          rl (lhs "code")
            [ rhs 1 "code"; rhs 2 "code" ]
            (fun ~labels args ->
              let l_true = Cg.lab labels.(0) and l_end = Cg.lab labels.(1) in
              code
                (Cg.cconcat
                   [
                     as_code ~ctx:"or" args.(0);
                     as_code ~ctx:"or" args.(1);
                     Cg.asm
                       [
                         Movl (PostInc sp, Reg r1);
                         Movl (PostInc sp, Reg r0);
                         Addl2 (Reg r1, Reg r0);
                         Tstl (Reg r0);
                         Bneq l_true;
                         Pushl (Imm 0);
                         Brb l_end;
                         Label l_true;
                         Pushl (Imm 1);
                         Label l_end;
                       ];
                   ]));
          errs_up [ 1; 2 ] ~extra:[ rhs 1 "ty"; rhs 2 "ty" ] ~extra_fn:(fun args ->
              want_ty "or" TBool (aty ~ctx:"or" args.(2))
              @ want_ty "or" TBool (aty ~ctx:"or" args.(3)));
        ]);
    (* ---------------- comparisons ---------------- *)
    compare_op "e_eq" (fun l -> Beql l);
    compare_op "e_ne" (fun l -> Bneq l);
    compare_op "e_lt" (fun l -> Blss l);
    compare_op "e_le" (fun l -> Bleq l);
    compare_op "e_gt" (fun l -> Bgtr l);
    compare_op "e_ge" (fun l -> Bgeq l);
    (* ---------------- unary ---------------- *)
    prod "e_neg" "expr" [ "expr" ]
      (down [ 1 ]
      @ [
          r (lhs "ty") [] (fun _ -> Pvalue.ty TInt);
          r (lhs "addr") [] (fun _ -> no_addr);
          r (lhs "code")
            [ rhs 1 "code" ]
            (fun args ->
              code
                (Cg.( ^^ )
                   (as_code ~ctx:"neg" args.(0))
                   (Cg.asm
                      [
                        Movl (PostInc sp, Reg r0);
                        Mnegl (Reg r0, Reg r0);
                        Pushl (Reg r0);
                      ])));
          errs_up [ 1 ] ~extra:[ rhs 1 "ty" ] ~extra_fn:(fun args ->
              want_ty "negation" TInt (aty ~ctx:"neg" args.(1)));
        ]);
    prod "e_not" "expr" [ "expr" ]
      (down [ 1 ]
      @ [
          r (lhs "ty") [] (fun _ -> Pvalue.ty TBool);
          r (lhs "addr") [] (fun _ -> no_addr);
          r (lhs "code")
            [ rhs 1 "code" ]
            (fun args ->
              code
                (Cg.( ^^ )
                   (as_code ~ctx:"not" args.(0))
                   (Cg.asm
                      [
                        Movl (PostInc sp, Reg r0);
                        Subl3 (Reg r0, Imm 1, Reg r0);
                        Pushl (Reg r0);
                      ])));
          errs_up [ 1 ] ~extra:[ rhs 1 "ty" ] ~extra_fn:(fun args ->
              want_ty "not" TBool (aty ~ctx:"not" args.(1)));
        ]);
    (* ---------------- function calls ---------------- *)
    prod "e_call" "expr" [ "ID"; "args" ]
      (down [ 2 ]
      @ [
          r (rhs 2 "psig")
            [ lhs "env"; rhs 1 "name" ]
            (fun args ->
              match lookup_env ~ctx:"fcall" args.(0) (as_str ~ctx:"fcall" args.(1)) with
              | Some v -> (
                  match Pvalue.as_info ~ctx:"fcall" v with
                  | Pvalue.IRoutine rt -> psig_value rt.params
                  | _ -> v_list [])
              | None -> v_list []);
          r (lhs "ty")
            [ lhs "env"; rhs 1 "name" ]
            (fun args ->
              match lookup_env ~ctx:"fcall" args.(0) (as_str ~ctx:"fcall" args.(1)) with
              | Some v -> (
                  match Pvalue.as_info ~ctx:"fcall" v with
                  | Pvalue.IRoutine { ret = Some t; _ } -> Pvalue.ty t
                  | _ -> Pvalue.ty TInt)
              | None -> Pvalue.ty TInt);
          r (lhs "addr") [] (fun _ -> no_addr);
          r (lhs "code")
            [ lhs "env"; lhs "level"; rhs 1 "name"; rhs 2 "code" ]
            (fun args ->
              let name = as_str ~ctx:"fcall" args.(2) in
              match lookup_env ~ctx:"fcall" args.(0) name with
              | Some v -> (
                  match Pvalue.as_info ~ctx:"fcall" v with
                  | Pvalue.IRoutine rt ->
                      let cur = as_int ~ctx:"fcall" args.(1) in
                      code
                        (Cg.cconcat
                           [
                             as_code ~ctx:"fcall" args.(3);
                             Cg.asm (Cg.push_static_link ~cur ~target:rt.level);
                             Cg.asm
                               [
                                 Calls (List.length rt.params + 1, rt.label);
                                 Pushl (Reg r0);
                               ];
                           ])
                  | _ -> code (Cg.asm [ Pushl (Imm 0) ]))
              | None -> code (Cg.asm [ Pushl (Imm 0) ]));
          errs_up [ 2 ]
            ~extra:[ lhs "env"; rhs 1 "name"; rhs 2 "tys" ]
            ~extra_fn:(fun args ->
              (* args: child errs, env, name, tys *)
              let name = as_str ~ctx:"fcall" args.(2) in
              match lookup_env ~ctx:"fcall" args.(1) name with
              | Some v -> (
                  match Pvalue.as_info ~ctx:"fcall" v with
                  | Pvalue.IRoutine rt ->
                      let tys = tys_of_value ~ctx:"fcall" args.(3) in
                      (if rt.ret = None then
                         [ Printf.sprintf "procedure %s used as a function" name ]
                       else [])
                      @
                      if List.length tys <> List.length rt.params then
                        [
                          Printf.sprintf "%s expects %d arguments, got %d" name
                            (List.length rt.params) (List.length tys);
                        ]
                      else
                        List.concat
                          (List.map2
                             (fun (pt, _) at ->
                               want_ty (Printf.sprintf "argument of %s" name) pt at)
                             rt.params tys)
                  | _ -> [ Printf.sprintf "%s is not a function" name ])
              | None -> [ Printf.sprintf "unknown function %s" name ]);
        ]);
    (* ---------------- lvalues ---------------- *)
    prod "lv_id" "lvalue" [ "ID" ]
      [
        r (lhs "ty")
          [ lhs "env"; rhs 1 "name" ]
          (fun args ->
            match resolve_var ~ctx:"lv" args.(0) (as_str ~ctx:"lv" args.(1)) with
            | Some (Pvalue.IVar { ty; _ }) -> Pvalue.ty ty
            | Some (Pvalue.IConst _ | Pvalue.IRoutine _) | None -> Pvalue.ty TInt);
        r (lhs "writable")
          [ lhs "env"; rhs 1 "name" ]
          (fun args ->
            match resolve_var ~ctx:"lv" args.(0) (as_str ~ctx:"lv" args.(1)) with
            | Some (Pvalue.IVar _) -> Value.Bool true
            | Some (Pvalue.IConst _ | Pvalue.IRoutine _) | None -> Value.Bool false);
        r (lhs "acode")
          [ lhs "env"; lhs "level"; rhs 1 "name" ]
          (fun args ->
            let cur = as_int ~ctx:"lv" args.(1) in
            match resolve_var ~ctx:"lv" args.(0) (as_str ~ctx:"lv" args.(2)) with
            | Some i -> code (Cg.asm (Cg.push_var_addr ~cur ~v:i))
            | None -> code (Cg.asm [ Pushl (Imm 0) ]));
        r (lhs "vcode")
          [ lhs "env"; lhs "level"; rhs 1 "name" ]
          (fun args ->
            let cur = as_int ~ctx:"lv" args.(1) in
            match resolve_var ~ctx:"lv" args.(0) (as_str ~ctx:"lv" args.(2)) with
            | Some (Pvalue.IConst k) -> code (Cg.asm [ Pushl (Imm k) ])
            | Some (Pvalue.IVar _ as i) ->
                code
                  (Cg.( ^^ )
                     (Cg.asm (Cg.push_var_addr ~cur ~v:i))
                     (Cg.asm Cg.deref_top))
            | Some (Pvalue.IRoutine _) | None -> code (Cg.asm [ Pushl (Imm 0) ]));
        r (lhs "errs")
          [ lhs "env"; rhs 1 "name" ]
          (fun args ->
            let name = as_str ~ctx:"lv" args.(1) in
            match resolve_var ~ctx:"lv" args.(0) name with
            | Some (Pvalue.IRoutine _) ->
                errs_v [ Printf.sprintf "routine %s used as a variable" name ]
            | Some (Pvalue.IVar _ | Pvalue.IConst _) -> v_list []
            | None -> errs_v [ Printf.sprintf "unknown identifier %s" name ]);
      ];
    prod "lv_index" "lvalue" [ "lvalue"; "expr" ]
      (down [ 1; 2 ]
      @ [
          r (lhs "ty")
            [ rhs 1 "ty" ]
            (fun args ->
              match aty ~ctx:"index" args.(0) with
              | TArray (_, _, elem) -> Pvalue.ty elem
              | TInt | TBool | TChar | TRecord _ -> Pvalue.ty TInt);
          r (lhs "writable") [ rhs 1 "writable" ] id;
          r (lhs "acode")
            [ rhs 1 "acode"; rhs 1 "ty"; rhs 2 "code" ]
            (fun args ->
              let lo, elem_bytes =
                match aty ~ctx:"index" args.(1) with
                | TArray (lo, _, elem) -> (lo, 4 * Ast.ty_words elem)
                | TInt | TBool | TChar | TRecord _ -> (0, 4)
              in
              code
                (Cg.cconcat
                   [
                     as_code ~ctx:"index" args.(0);
                     as_code ~ctx:"index" args.(2);
                     Cg.asm
                       [
                         Movl (PostInc sp, Reg r1) (* index *);
                         Movl (PostInc sp, Reg r0) (* base *);
                         Subl2 (Imm lo, Reg r1);
                         Mull2 (Imm elem_bytes, Reg r1);
                         Addl2 (Reg r1, Reg r0);
                         Pushl (Reg r0);
                       ];
                   ]));
          r (lhs "vcode")
            [ rhs 1 "acode"; rhs 1 "ty"; rhs 2 "code" ]
            (fun args ->
              let lo, elem_bytes, elem_scalar =
                match aty ~ctx:"index" args.(1) with
                | TArray (lo, _, elem) ->
                    (lo, 4 * Ast.ty_words elem, Ast.is_scalar elem)
                | TInt | TBool | TChar | TRecord _ -> (0, 4, true)
              in
              if not elem_scalar then code (Cg.asm [ Pushl (Imm 0) ])
              else
                code
                  (Cg.cconcat
                     [
                       as_code ~ctx:"index" args.(0);
                       as_code ~ctx:"index" args.(2);
                       Cg.asm
                         [
                           Movl (PostInc sp, Reg r1);
                           Movl (PostInc sp, Reg r0);
                           Subl2 (Imm lo, Reg r1);
                           Mull2 (Imm elem_bytes, Reg r1);
                           Addl2 (Reg r1, Reg r0);
                           Pushl (Deref r0);
                         ];
                     ]));
          errs_up [ 1; 2 ]
            ~extra:[ rhs 1 "ty"; rhs 2 "ty" ]
            ~extra_fn:(fun args ->
              (match aty ~ctx:"index" args.(2) with
              | TArray _ -> []
              | t ->
                  [ Printf.sprintf "indexing a %s" (Ast.ty_to_string t) ])
              @ want_ty "array index" TInt (aty ~ctx:"index" args.(3)));
        ]);
    prod "lv_field" "lvalue" [ "lvalue"; "ID" ]
      (down [ 1 ]
      @ [
          r (lhs "ty")
            [ rhs 1 "ty"; rhs 2 "name" ]
            (fun args ->
              match aty ~ctx:"field" args.(0) with
              | TRecord fields -> (
                  match List.assoc_opt (as_str ~ctx:"field" args.(1)) fields with
                  | Some t -> Pvalue.ty t
                  | None -> Pvalue.ty TInt)
              | TInt | TBool | TChar | TArray _ -> Pvalue.ty TInt);
          r (lhs "writable") [ rhs 1 "writable" ] id;
          r (lhs "acode")
            [ rhs 1 "acode"; rhs 1 "ty"; rhs 2 "name" ]
            (fun args ->
              let offset =
                match aty ~ctx:"field" args.(1) with
                | TRecord fields ->
                    let rec off acc = function
                      | [] -> 0
                      | (n, t) :: rest ->
                          if n = as_str ~ctx:"field" args.(2) then acc
                          else off (acc + (4 * Ast.ty_words t)) rest
                    in
                    off 0 fields
                | TInt | TBool | TChar | TArray _ -> 0
              in
              code
                (Cg.( ^^ )
                   (as_code ~ctx:"field" args.(0))
                   (if offset = 0 then Cg.empty
                    else
                      Cg.asm
                        [
                          Movl (PostInc sp, Reg r0);
                          Addl2 (Imm offset, Reg r0);
                          Pushl (Reg r0);
                        ])));
          r (lhs "vcode")
            [ rhs 1 "acode"; rhs 1 "ty"; rhs 2 "name" ]
            (fun args ->
              let fields =
                match aty ~ctx:"field" args.(1) with
                | TRecord fields -> fields
                | TInt | TBool | TChar | TArray _ -> []
              in
              let fname = as_str ~ctx:"field" args.(2) in
              let offset =
                let rec off acc = function
                  | [] -> 0
                  | (n, t) :: rest ->
                      if n = fname then acc else off (acc + (4 * Ast.ty_words t)) rest
                in
                off 0 fields
              in
              let scalar =
                match List.assoc_opt fname fields with
                | Some t -> Ast.is_scalar t
                | None -> true
              in
              if not scalar then code (Cg.asm [ Pushl (Imm 0) ])
              else
                code
                  (Cg.( ^^ )
                     (as_code ~ctx:"field" args.(0))
                     (Cg.asm
                        [
                          Movl (PostInc sp, Reg r0);
                          Pushl (Disp (offset, r0));
                        ])));
          errs_up [ 1 ]
            ~extra:[ rhs 1 "ty"; rhs 2 "name" ]
            ~extra_fn:(fun args ->
              match aty ~ctx:"field" args.(1) with
              | TRecord fields ->
                  let fname = as_str ~ctx:"field" args.(2) in
                  if List.mem_assoc fname fields then []
                  else [ Printf.sprintf "unknown field %s" fname ]
              | t ->
                  [
                    Printf.sprintf "field access on a %s" (Ast.ty_to_string t);
                  ]);
        ]);
  ]
