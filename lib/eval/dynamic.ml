open Pag_core
open Pag_obs

type stats = { instances : int; edges : int; evals : int }

exception Cycle of string

(* The dependency graph is stored in CSR form over the store's dense
   instance (slot) ids: [off] gives each instance's range in [edge_dst],
   whose entries are the rule ids waiting on that instance. Rule arguments
   are precomputed the same way — [arg_off]/[arg_code] give each rule's
   argument slots, with terminal (intrinsic) dependencies resolved once at
   build time into [consts]. The ready loop then only touches flat arrays:
   no hashing, no string comparison, no per-edge allocation. *)

let dummy_rule = Grammar.rule (Grammar.lhs "") ~deps:[] (fun _ -> Value.Unit)

let eval_inner ?(obs = Obs.null_ctx) ?root_inh ?memo g t =
  let graph_t0 = if Obs.ctx_enabled obs then obs.Obs.x_clock () else 0.0 in
  let store = Store.create ?root_inh g t in
  let total = Store.slot_count store in
  (* Pass 1: count rules, arguments and terminal dependencies. *)
  let n_rules = ref 0 and n_args = ref 0 and n_terms = ref 0 in
  Tree.iter
    (fun node ->
      match node.Tree.prod with
      | None -> ()
      | Some p ->
          Array.iter
            (fun (r : Grammar.rule) ->
              incr n_rules;
              n_args := !n_args + Array.length r.Grammar.r_rdeps;
              Array.iter
                (fun (d : Grammar.rref) ->
                  if d.Grammar.rr_term then incr n_terms)
                r.Grammar.r_rdeps)
            p.Grammar.p_rules)
    t;
  let n_rules = !n_rules in
  let rule_rules = Array.make (max 1 n_rules) dummy_rule in
  (* (production id, rule index) packed: identifies the semantic function
     across nodes, the memo's notion of "the same rule". *)
  let rule_key = Array.make (max 1 n_rules) 0 in
  let target_slot = Array.make (max 1 n_rules) 0 in
  let waiting = Array.make (max 1 n_rules) 0 in
  let arg_off = Array.make (n_rules + 1) 0 in
  let arg_code = Array.make (max 1 !n_args) 0 in
  let consts = Array.make (max 1 !n_terms) Value.Unit in
  (* Pass 2: resolve every rule's target and argument slots, record
     per-instance dependent-edge degrees (only instances still unset can
     block a rule). *)
  let off = Array.make (total + 1) 0 in
  let edge_count = ref 0 in
  let rc = ref 0 and ac = ref 0 and tc = ref 0 in
  Tree.iter
    (fun node ->
      match node.Tree.prod with
      | None -> ()
      | Some p ->
          Array.iteri
            (fun ridx (r : Grammar.rule) ->
              let rid = !rc in
              incr rc;
              rule_rules.(rid) <- r;
              rule_key.(rid) <- (p.Grammar.p_id lsl 10) lor ridx;
              arg_off.(rid) <- !ac;
              let tgt = r.Grammar.r_rtarget in
              let tn =
                if tgt.Grammar.rr_pos = 0 then node
                else node.Tree.children.(tgt.Grammar.rr_pos - 1)
              in
              target_slot.(rid) <-
                Store.slot_of store tn ~attr_idx:tgt.Grammar.rr_attr;
              Array.iter
                (fun (d : Grammar.rref) ->
                  let dn =
                    if d.Grammar.rr_pos = 0 then node
                    else node.Tree.children.(d.Grammar.rr_pos - 1)
                  in
                  (if d.Grammar.rr_term then begin
                     let ci = !tc in
                     incr tc;
                     consts.(ci) <- Tree.term_attr dn d.Grammar.rr_name;
                     arg_code.(!ac) <- -ci - 1
                   end
                   else begin
                     let i =
                       Store.slot_of store dn ~attr_idx:d.Grammar.rr_attr
                     in
                     arg_code.(!ac) <- i;
                     incr edge_count;
                     if not (Store.slot_is_set store i) then begin
                       waiting.(rid) <- waiting.(rid) + 1;
                       off.(i + 1) <- off.(i + 1) + 1
                     end
                   end);
                  incr ac)
                r.Grammar.r_rdeps)
            p.Grammar.p_rules)
    t;
  arg_off.(n_rules) <- !ac;
  (* Prefix-sum degrees into CSR offsets, then fill the edge array. *)
  for i = 1 to total do
    off.(i) <- off.(i) + off.(i - 1)
  done;
  let wired = !edge_count in
  let edge_dst = Array.make (max 1 off.(total)) 0 in
  let fill = Array.copy off in
  for rid = 0 to n_rules - 1 do
    if waiting.(rid) > 0 then
      for k = arg_off.(rid) to arg_off.(rid + 1) - 1 do
        let c = arg_code.(k) in
        if c >= 0 && not (Store.slot_is_set store c) then begin
          edge_dst.(fill.(c)) <- rid;
          fill.(c) <- fill.(c) + 1
        end
      done
  done;
  if Obs.ctx_enabled obs then
    Obs.span obs.Obs.x_rec ~pid:obs.Obs.x_pid ~t0:graph_t0
      ~t1:(obs.Obs.x_clock ()) "graph-build";
  let eval_t0 = if Obs.ctx_enabled obs then obs.Obs.x_clock () else 0.0 in
  (* Ready queue: each rule enqueues exactly once, so a flat ring suffices. *)
  let queue = Array.make (max 1 n_rules) 0 in
  let head = ref 0 and tail = ref 0 in
  for rid = 0 to n_rules - 1 do
    if waiting.(rid) = 0 then begin
      queue.(!tail) <- rid;
      incr tail
    end
  done;
  let evals = ref 0 in
  while !head < !tail do
    let rid = queue.(!head) in
    incr head;
    let lo = arg_off.(rid) and hi = arg_off.(rid + 1) in
    let args = Array.make (hi - lo) Value.Unit in
    for k = lo to hi - 1 do
      let c = arg_code.(k) in
      args.(k - lo) <-
        (if c >= 0 then Store.slot_value store c else consts.(-c - 1))
    done;
    let v =
      match memo with
      | None -> rule_rules.(rid).Grammar.r_fn args
      | Some m ->
          Memo.apply_rule m ~rule_key:rule_key.(rid)
            ~fn:rule_rules.(rid).Grammar.r_fn args
    in
    incr evals;
    let ti = target_slot.(rid) in
    Store.define_slot store ti v;
    for k = off.(ti) to off.(ti + 1) - 1 do
      let c = edge_dst.(k) in
      waiting.(c) <- waiting.(c) - 1;
      if waiting.(c) = 0 then begin
        queue.(!tail) <- c;
        incr tail
      end
    done
  done;
  if Obs.ctx_enabled obs then begin
    Obs.span obs.Obs.x_rec ~pid:obs.Obs.x_pid ~t0:eval_t0
      ~t1:(obs.Obs.x_clock ()) "toposort-eval";
    let reg = obs.Obs.x_metrics in
    Obs.Metrics.add (Obs.Metrics.counter reg "eval.dynamic_rules") !evals;
    (match memo with
    | Some m ->
        let hits, misses = Memo.rules_stats m in
        Obs.Metrics.add (Obs.Metrics.counter reg "eval.memo_hits") hits;
        Obs.Metrics.add (Obs.Metrics.counter reg "eval.memo_misses") misses
    | None -> ());
    Obs.Metrics.add (Obs.Metrics.counter reg "graph.nodes") total;
    Obs.Metrics.add (Obs.Metrics.counter reg "graph.edges") wired;
    Obs.Metrics.add_gauge reg "store.reads" (float_of_int (Store.reads store));
    Obs.Metrics.add_gauge reg "store.writes" (float_of_int (Store.sets store))
  end;
  let left = Store.missing store in
  if left > 0 then
    raise
      (Cycle
         (Printf.sprintf
            "dynamic evaluation stuck: %d attribute instances unevaluated \
             (circular tree or missing root attributes)"
            left));
  (store, { instances = total; edges = wired; evals = !evals })

let eval ?obs ?root_inh ?hashcons g t =
  let memo =
    match hashcons with
    | Some true -> Some (Memo.create_rules ())
    | Some false | None -> None
  in
  let r, _ =
    Pag_core.Uid.with_base 0 (fun () -> eval_inner ?obs ?root_inh ?memo g t)
  in
  r
