lib/core/grammar.ml: Array Format Hashtbl List Option Printf Value
