open Pag_core
open Pag_obs

(* The shared evaluation engine.

   Every evaluator in this library — dynamic topo-sort, static visit
   sequences, the parallel worker's spine, incremental re-evaluation — fires
   the same thing: one semantic-rule instance at one node, reading argument
   slots and defining a target slot in a flat {!Store}. The engine owns that
   core once: a flat table of rule instances (rule, owning node, packed memo
   key, target slot, argument codes) plus the optional rule-result memo.
   Schedulers differ only in the order they call {!fire}/{!fire_at} — the
   ready-queue topological order here ({!run_topo}), the plan's visit
   sequences ({!Static_eval}), the worker's item graph, or the dirty cone of
   an edit ({!Incr}).

   Layout mirrors the store's dense slot ids: instances of one node are
   consecutive, [rid_base] maps a node's dense index to its first rule id,
   so [fire_at node ridx] is two array reads. Argument codes >= 0 are slot
   ids; negative codes are [-ci - 1] indices into [consts], terminal
   intrinsics resolved once at build time. Arrays are growable so an edit
   can {!append} a replacement subtree's instances without rebuilding. *)

exception Cycle of string

let dummy_rule = Grammar.rule (Grammar.lhs "") ~deps:[] (fun _ -> Value.Unit)

type t = {
  e_g : Grammar.t;
  e_store : Store.t;
  e_memo : Memo.rules option;
  mutable e_n : int;  (* rule instances allocated *)
  mutable e_rules : Grammar.rule array;  (* rid -> rule *)
  mutable e_node : Tree.t array;  (* rid -> node the rule applies at *)
  mutable e_key : int array;  (* rid -> (prod id, rule index) packed *)
  mutable e_target : int array;  (* rid -> target slot *)
  mutable e_arg_off : int array;  (* rid -> first arg index; length e_n + 1 *)
  mutable e_args : int;  (* arg entries used *)
  mutable e_arg_code : int array;  (* >= 0 slot id, < 0 const [-c - 1] *)
  mutable e_nconsts : int;
  mutable e_consts : Value.t array;
  mutable e_dead : Bytes.t;  (* rid -> detached by an edit? *)
  mutable e_norules : Bytes.t;
      (* dense node index -> production node whose rules were suppressed by
         [rules_for] (remote stubs, parked DAG occurrences): its rid_base
         entry is meaningless and must not be used until
         {!materialize_subtree} resolves the node *)
  mutable e_rid_base : int array;  (* dense node index -> first rid *)
  mutable e_nodes_covered : int;  (* length of the rid_base prefix in use *)
  mutable e_slot_args : int;  (* non-const args: the classic "edges" stat *)
  mutable e_fired : int;
  (* provenance attachment: every firing appends one record when a ring is
     attached; [Prov.disabled] keeps the hot path at one branch *)
  mutable e_prov : Prov.t;
  mutable e_prov_pid : int;
  mutable e_prov_clock : unit -> float;
  mutable e_prov_dwell_dyn : float;  (* priced duration of a fire/refire... *)
  mutable e_prov_dwell_stat : float;  (* ...and of a fire_at; < 0 = wall *)
  mutable e_prov_arg : int -> unit;  (* [Prov.arg ring], hoisted: one
                                        closure per attachment, not one per
                                        firing *)
}

let store e = e.e_store

let grammar e = e.e_g

let rule_count e = e.e_n

let slot_args e = e.e_slot_args

let fired e = e.e_fired

let rule_of e rid = e.e_rules.(rid)

let node_of e rid = e.e_node.(rid)

let key e rid = e.e_key.(rid)

let target_slot e rid = e.e_target.(rid)

let target_instance e rid =
  let t = e.e_rules.(rid).Grammar.r_rtarget in
  let node = e.e_node.(rid) in
  let tn =
    if t.Grammar.rr_pos = 0 then node
    else node.Tree.children.(t.Grammar.rr_pos - 1)
  in
  (tn, t.Grammar.rr_name)

let is_dead e rid =
  Char.code (Bytes.unsafe_get e.e_dead (rid lsr 3)) land (1 lsl (rid land 7))
  <> 0

let mark_dead e rid =
  let b = rid lsr 3 in
  Bytes.set e.e_dead b
    (Char.chr (Char.code (Bytes.get e.e_dead b) lor (1 lsl (rid land 7))))

let norules_bit e i =
  Char.code (Bytes.unsafe_get e.e_norules (i lsr 3)) land (1 lsl (i land 7))
  <> 0

let set_norules e i =
  let b = i lsr 3 in
  Bytes.set e.e_norules b
    (Char.chr (Char.code (Bytes.get e.e_norules b) lor (1 lsl (i land 7))))

let clear_norules e i =
  let b = i lsr 3 in
  Bytes.set e.e_norules b
    (Char.chr (Char.code (Bytes.get e.e_norules b) land lnot (1 lsl (i land 7))))

let has_rules e node = not (norules_bit e (Store.dense_index e.e_store node))

let rid_at e node ridx =
  e.e_rid_base.(Store.dense_index e.e_store node) + ridx

let iter_slot_args e rid f =
  for k = e.e_arg_off.(rid) to e.e_arg_off.(rid + 1) - 1 do
    let c = e.e_arg_code.(k) in
    if c >= 0 then f c
  done

(* ------------------------------------------------------------------ *)
(* Growable arrays                                                     *)
(* ------------------------------------------------------------------ *)

let grow a used need def =
  let len = Array.length a in
  if used + need <= len then a
  else begin
    let a' = Array.make (max (used + need) (2 * max 1 len)) def in
    Array.blit a 0 a' 0 used;
    a'
  end

let grow_bytes b need =
  let bytes_needed = (need + 7) / 8 in
  if Bytes.length b >= bytes_needed then b
  else begin
    let b' = Bytes.make (max bytes_needed (2 * max 1 (Bytes.length b))) '\000' in
    Bytes.blit b 0 b' 0 (Bytes.length b);
    b'
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(* Resolve one node's rule instances into the flat tables. [rid_base] for
   the node must already point at the first rid; rules of one node are
   consecutive in production-rule order. *)
let resolve_node e (node : Tree.t) =
  match node.Tree.prod with
  | None -> ()
  | Some p ->
      Array.iteri
        (fun ridx (r : Grammar.rule) ->
          let rid = e.e_n in
          e.e_n <- rid + 1;
          e.e_rules.(rid) <- r;
          e.e_node.(rid) <- node;
          e.e_key.(rid) <- (p.Grammar.p_id lsl 10) lor ridx;
          e.e_arg_off.(rid) <- e.e_args;
          let tgt = r.Grammar.r_rtarget in
          let tn =
            if tgt.Grammar.rr_pos = 0 then node
            else node.Tree.children.(tgt.Grammar.rr_pos - 1)
          in
          e.e_target.(rid) <-
            Store.slot_of e.e_store tn ~attr_idx:tgt.Grammar.rr_attr;
          Array.iter
            (fun (d : Grammar.rref) ->
              let dn =
                if d.Grammar.rr_pos = 0 then node
                else node.Tree.children.(d.Grammar.rr_pos - 1)
              in
              (if d.Grammar.rr_term then begin
                 let ci = e.e_nconsts in
                 e.e_nconsts <- ci + 1;
                 e.e_consts.(ci) <- Tree.term_attr dn d.Grammar.rr_name;
                 e.e_arg_code.(e.e_args) <- -ci - 1
               end
               else begin
                 e.e_arg_code.(e.e_args) <-
                   Store.slot_of e.e_store dn ~attr_idx:d.Grammar.rr_attr;
                 e.e_slot_args <- e.e_slot_args + 1
               end);
              e.e_args <- e.e_args + 1)
            r.Grammar.r_rdeps;
          e.e_arg_off.(rid + 1) <- e.e_args)
        p.Grammar.p_rules

(* Reserve table room for the rules of [node], then resolve them. *)
let add_node e ~rules_for (node : Tree.t) =
  let i = e.e_nodes_covered in
  e.e_rid_base <- grow e.e_rid_base (i + 1) 1 0;
  e.e_norules <- grow_bytes e.e_norules (i + 1);
  e.e_rid_base.(i) <- e.e_n;
  e.e_nodes_covered <- i + 1;
  e.e_rid_base.(i + 1) <- e.e_n;
  match node.Tree.prod with
  | None -> ()
  | Some p when not (rules_for node) ->
      ignore p;
      set_norules e i
  | Some p ->
      let nr = Array.length p.Grammar.p_rules in
      let na = ref 0 and nt = ref 0 in
      Array.iter
        (fun (r : Grammar.rule) ->
          na := !na + Array.length r.Grammar.r_rdeps;
          Array.iter
            (fun (d : Grammar.rref) -> if d.Grammar.rr_term then incr nt)
            r.Grammar.r_rdeps)
        p.Grammar.p_rules;
      e.e_rules <- grow e.e_rules e.e_n nr dummy_rule;
      e.e_node <- grow e.e_node e.e_n nr node;
      e.e_key <- grow e.e_key e.e_n nr 0;
      e.e_target <- grow e.e_target e.e_n nr 0;
      e.e_arg_off <- grow e.e_arg_off (e.e_n + 1) nr 0;
      e.e_arg_code <- grow e.e_arg_code e.e_args !na 0;
      e.e_consts <- grow e.e_consts e.e_nconsts !nt Value.Unit;
      e.e_dead <- grow_bytes e.e_dead (e.e_n + nr);
      resolve_node e node;
      e.e_rid_base.(i + 1) <- e.e_n

let create ?memo ?(rules_for = fun _ -> true) g st =
  let e =
    {
      e_g = g;
      e_store = st;
      e_memo = memo;
      e_n = 0;
      e_rules = [| dummy_rule |];
      e_node = [| Store.root st |];
      e_key = [| 0 |];
      e_target = [| 0 |];
      e_arg_off = [| 0; 0 |];
      e_args = 0;
      e_arg_code = [| 0 |];
      e_nconsts = 0;
      e_consts = [| Value.Unit |];
      e_dead = Bytes.make 1 '\000';
      e_norules = Bytes.make (max 1 ((Store.node_count st + 7) / 8)) '\000';
      e_rid_base = Array.make (Store.node_count st + 1) 0;
      e_nodes_covered = 0;
      e_slot_args = 0;
      e_fired = 0;
      e_prov = Prov.disabled;
      e_prov_pid = 0;
      e_prov_clock = (fun () -> 0.0);
      e_prov_dwell_dyn = -1.0;
      e_prov_dwell_stat = -1.0;
      e_prov_arg = ignore;
    }
  in
  Store.iter_nodes st (fun node -> add_node e ~rules_for node);
  e

(* Extend the engine with the instances of an appended replacement subtree.
   Must run after {!Store.append_subtree}, visiting the same nodes in the
   same (preorder) order so dense indices and rid ranges line up. Returns
   the new (rid_lo, rid_hi) range. *)
let append e sub =
  let rid_lo = e.e_n in
  Tree.iter (fun node -> add_node e ~rules_for:(fun _ -> true) node) sub;
  (rid_lo, e.e_n)

(* Late resolution of a subtree whose rules were suppressed at construction
   (a parked DAG occurrence whose inherited fingerprint diverged from its
   class leader's). The nodes' slots already exist, so unlike {!append}
   nothing is reserved in the store — the new instances are appended at the
   end of the flat table and each node's [rid_base] entry is repointed
   there. After this, [rid_base.(i+1)] no longer bounds node [i]'s rids
   (the production's rule count does — {!kill_subtree} and {!rid_at} only
   rely on that); {!note_replayed}'s range walk stays valid because the
   static path never materializes. Returns the new (rid_lo, rid_hi). *)
let materialize_subtree ?(prune = fun _ -> false) e sub =
  let rid_lo = e.e_n in
  (* Preorder, like {!Tree.iter}, but [prune] cuts whole child subtrees:
     the DAG runtime materializes a region's spine while nested parked
     regions keep their suppressed instances (they resolve on their own).
     The root itself is never pruned. *)
  let resolve (node : Tree.t) =
    match node.Tree.prod with
    | None -> ()
    | Some p ->
        let i = Store.dense_index e.e_store node in
        if norules_bit e i then begin
          let nr = Array.length p.Grammar.p_rules in
          let na = ref 0 and nt = ref 0 in
          Array.iter
            (fun (r : Grammar.rule) ->
              na := !na + Array.length r.Grammar.r_rdeps;
              Array.iter
                (fun (d : Grammar.rref) -> if d.Grammar.rr_term then incr nt)
                r.Grammar.r_rdeps)
            p.Grammar.p_rules;
          e.e_rules <- grow e.e_rules e.e_n nr dummy_rule;
          e.e_node <- grow e.e_node e.e_n nr node;
          e.e_key <- grow e.e_key e.e_n nr 0;
          e.e_target <- grow e.e_target e.e_n nr 0;
          e.e_arg_off <- grow e.e_arg_off (e.e_n + 1) nr 0;
          e.e_arg_code <- grow e.e_arg_code e.e_args !na 0;
          e.e_consts <- grow e.e_consts e.e_nconsts !nt Value.Unit;
          e.e_dead <- grow_bytes e.e_dead (e.e_n + nr);
          e.e_rid_base.(i) <- e.e_n;
          clear_norules e i;
          resolve_node e node
        end
  in
  let rec go (node : Tree.t) =
    resolve node;
    Array.iter (fun k -> if not (prune k) then go k) node.Tree.children
  in
  go sub;
  (rid_lo, e.e_n)

(* Detach a subtree's rule instances: they keep their slots and last values
   but no scheduler fires or propagates through them again. Suppressed
   nodes have no instances to detach. *)
let kill_subtree e sub =
  Tree.iter
    (fun (node : Tree.t) ->
      match node.Tree.prod with
      | None -> ()
      | Some p ->
          let i = Store.dense_index e.e_store node in
          if not (norules_bit e i) then begin
            let base = e.e_rid_base.(i) in
            for ridx = 0 to Array.length p.Grammar.p_rules - 1 do
              mark_dead e (base + ridx)
            done
          end)
    sub

(* ------------------------------------------------------------------ *)
(* Firing                                                              *)
(* ------------------------------------------------------------------ *)

let gather e rid =
  let lo = e.e_arg_off.(rid) and hi = e.e_arg_off.(rid + 1) in
  let args = Array.make (hi - lo) Value.Unit in
  for k = lo to hi - 1 do
    let c = e.e_arg_code.(k) in
    args.(k - lo) <-
      (if c >= 0 then Store.slot_value e.e_store c else e.e_consts.(-c - 1))
  done;
  args

let compute e rid args =
  match e.e_memo with
  | None -> e.e_rules.(rid).Grammar.r_fn args
  | Some m ->
      Memo.apply_rule m ~rule_key:e.e_key.(rid)
        ~fn:e.e_rules.(rid).Grammar.r_fn args

(* Provenance attachment. [set_prov] arms recording; the firing paths then
   pay one field read and branch when disarmed. [dwell_*] price a firing's
   duration for schedulers whose clock does not advance inside the firing
   (the network simulator charges cost-model delays after the fact); with
   no dwell, t1 is a second clock read — wall-clock duration. *)

let set_prov ?(pid = 0) ?dwell_dynamic ?dwell_static ~clock e p =
  e.e_prov <- p;
  e.e_prov_pid <- pid;
  e.e_prov_clock <- clock;
  e.e_prov_dwell_dyn <- Option.value dwell_dynamic ~default:(-1.0);
  e.e_prov_dwell_stat <- Option.value dwell_static ~default:(-1.0);
  e.e_prov_arg <- (fun slot -> Prov.arg p slot)

let set_prov_pid e pid = e.e_prov_pid <- pid

let prov e = e.e_prov

let prov_pid e = e.e_prov_pid

let prov_clock e = e.e_prov_clock

let note_fire e rid t0 dwell =
  let p = e.e_prov in
  let t1 = if dwell >= 0.0 then t0 +. dwell else e.e_prov_clock () in
  Prov.record p ~rid ~pid:e.e_prov_pid ~target:e.e_target.(rid) ~t0 ~t1
    ~replay:false;
  iter_slot_args e rid e.e_prov_arg

let fire e rid =
  let t0 = if Prov.enabled e.e_prov then e.e_prov_clock () else 0.0 in
  let v = compute e rid (gather e rid) in
  e.e_fired <- e.e_fired + 1;
  Store.define_slot e.e_store e.e_target.(rid) v;
  if Prov.enabled e.e_prov then note_fire e rid t0 e.e_prov_dwell_dyn

(* The static path: its memoization unit is the whole subtree visit
   ({!Memo.subtree}), so individual firings bypass the rule memo. *)
let fire_at e node ridx =
  let rid = rid_at e node ridx in
  let t0 = if Prov.enabled e.e_prov then e.e_prov_clock () else 0.0 in
  let v = e.e_rules.(rid).Grammar.r_fn (gather e rid) in
  e.e_fired <- e.e_fired + 1;
  Store.define_slot e.e_store e.e_target.(rid) v;
  if Prov.enabled e.e_prov then note_fire e rid t0 e.e_prov_dwell_stat

let refire e rid =
  let t0 = if Prov.enabled e.e_prov then e.e_prov_clock () else 0.0 in
  let v = compute e rid (gather e rid) in
  e.e_fired <- e.e_fired + 1;
  let changed = Store.redefine_slot e.e_store e.e_target.(rid) v in
  if Prov.enabled e.e_prov then note_fire e rid t0 e.e_prov_dwell_dyn;
  changed

(* A memoized subtree replay ({!Memo.Replayed}) sets the subtree's slots
   without firing anything; record zero-duration replay firings so the
   provenance DAG keeps the producer of every slot — without them a slice
   through a replayed region would dead-end at the replay boundary. The
   rid range of a covered node is [rid_base i .. rid_base (i+1)), which is
   empty for nodes whose rules were not resolved (remote stubs). *)
let note_replayed e sub =
  if Prov.enabled e.e_prov then begin
    let p = e.e_prov in
    let t = e.e_prov_clock () in
    Tree.iter
      (fun (node : Tree.t) ->
        match node.Tree.prod with
        | None -> ()
        | Some _ ->
            let i = Store.dense_index e.e_store node in
            for rid = e.e_rid_base.(i) to e.e_rid_base.(i + 1) - 1 do
              Prov.record p ~rid ~pid:e.e_prov_pid ~target:e.e_target.(rid)
                ~t0:t ~t1:t ~replay:true;
              iter_slot_args e rid e.e_prov_arg
            done)
      sub
  end

(* ------------------------------------------------------------------ *)
(* Dependency graph                                                    *)
(* ------------------------------------------------------------------ *)

(* Consumer edges (slot -> rule instances reading it) in CSR form over the
   slot ids present at build time, plus an overflow table for edges added
   by later appends/rewires, plus the producer map (slot -> defining rid).
   Stale edges from slots of a detached subtree are harmless: dead slots
   are never redefined, so their consumer lists are never walked. *)
type graph = {
  gr_slots : int;  (* slots covered by the CSR arrays *)
  gr_off : int array;
  gr_adj : int array;
  gr_over : (int, int list ref) Hashtbl.t;
  mutable gr_producer : int array;  (* slot -> rid, -1 when external *)
}

let graph e =
  let total = Store.slot_count e.e_store in
  let off = Array.make (total + 1) 0 in
  for k = 0 to e.e_args - 1 do
    let c = e.e_arg_code.(k) in
    if c >= 0 then off.(c + 1) <- off.(c + 1) + 1
  done;
  for i = 1 to total do
    off.(i) <- off.(i) + off.(i - 1)
  done;
  let adj = Array.make (max 1 off.(total)) 0 in
  let fill = Array.copy off in
  let producer = Array.make (max 1 total) (-1) in
  for rid = 0 to e.e_n - 1 do
    producer.(e.e_target.(rid)) <- rid;
    for k = e.e_arg_off.(rid) to e.e_arg_off.(rid + 1) - 1 do
      let c = e.e_arg_code.(k) in
      if c >= 0 then begin
        adj.(fill.(c)) <- rid;
        fill.(c) <- fill.(c) + 1
      end
    done
  done;
  {
    gr_slots = total;
    gr_off = off;
    gr_adj = adj;
    gr_over = Hashtbl.create 16;
    gr_producer = producer;
  }

let producer gr slot =
  if slot < Array.length gr.gr_producer then gr.gr_producer.(slot) else -1

let iter_consumers gr slot f =
  if slot < gr.gr_slots then
    for k = gr.gr_off.(slot) to gr.gr_off.(slot + 1) - 1 do
      f gr.gr_adj.(k)
    done;
  match Hashtbl.find_opt gr.gr_over slot with
  | None -> ()
  | Some l -> List.iter f !l

let add_overflow gr ~slot ~rid =
  match Hashtbl.find_opt gr.gr_over slot with
  | Some l -> l := rid :: !l
  | None -> Hashtbl.replace gr.gr_over slot (ref [ rid ])

let set_producer gr ~slot ~rid =
  let len = Array.length gr.gr_producer in
  if slot >= len then begin
    let a = Array.make (max (slot + 1) (2 * max 1 len)) (-1) in
    Array.blit gr.gr_producer 0 a 0 len;
    gr.gr_producer <- a
  end;
  gr.gr_producer.(slot) <- rid

(* Register appended rids [rid_lo .. rid_hi - 1]: producer entries for
   their targets, overflow consumer edges for their slot arguments. *)
let graph_note_range e gr ~rid_lo ~rid_hi =
  for rid = rid_lo to rid_hi - 1 do
    set_producer gr ~slot:e.e_target.(rid) ~rid;
    iter_slot_args e rid (fun slot -> add_overflow gr ~slot ~rid)
  done

(* Re-resolve the rules of [node] in place after one of its children was
   replaced: targets and argument slots that moved are recomputed (and, when
   a graph is supplied, rewired through producer/overflow entries); terminal
   intrinsics are re-read into their existing const cells. Argument/const
   cell counts are shape properties of the production, so everything fits
   where it already is. *)
let reresolve_node e ?graph (node : Tree.t) =
  match node.Tree.prod with
  | None -> ()
  | Some p ->
      if norules_bit e (Store.dense_index e.e_store node) then
        invalid_arg
          "Engine.reresolve_node: node has suppressed rules (materialize \
           the occurrence first)";
      let base = e.e_rid_base.(Store.dense_index e.e_store node) in
      Array.iteri
        (fun ridx (r : Grammar.rule) ->
          let rid = base + ridx in
          let tgt = r.Grammar.r_rtarget in
          let tn =
            if tgt.Grammar.rr_pos = 0 then node
            else node.Tree.children.(tgt.Grammar.rr_pos - 1)
          in
          let t_new = Store.slot_of e.e_store tn ~attr_idx:tgt.Grammar.rr_attr in
          if t_new <> e.e_target.(rid) then begin
            e.e_target.(rid) <- t_new;
            match graph with
            | Some gr -> set_producer gr ~slot:t_new ~rid
            | None -> ()
          end;
          let k = ref e.e_arg_off.(rid) in
          Array.iter
            (fun (d : Grammar.rref) ->
              let dn =
                if d.Grammar.rr_pos = 0 then node
                else node.Tree.children.(d.Grammar.rr_pos - 1)
              in
              (if d.Grammar.rr_term then begin
                 let ci = -e.e_arg_code.(!k) - 1 in
                 e.e_consts.(ci) <- Tree.term_attr dn d.Grammar.rr_name
               end
               else begin
                 let s_new =
                   Store.slot_of e.e_store dn ~attr_idx:d.Grammar.rr_attr
                 in
                 if s_new <> e.e_arg_code.(!k) then begin
                   e.e_arg_code.(!k) <- s_new;
                   match graph with
                   | Some gr -> add_overflow gr ~slot:s_new ~rid
                   | None -> ()
                 end
               end);
              incr k)
            r.Grammar.r_rdeps)
        p.Grammar.p_rules

(* ------------------------------------------------------------------ *)
(* Topological schedule                                                *)
(* ------------------------------------------------------------------ *)

(* Data-driven evaluation to a fixed point: fire every rule whose argument
   slots are all set, defining targets and releasing consumers. Each live
   rule enqueues exactly once, so a flat ring suffices. *)
let run_topo e gr =
  let n = e.e_n in
  let waiting = Array.make (max 1 n) 0 in
  let queue = Array.make (max 1 n) 0 in
  let head = ref 0 and tail = ref 0 in
  for rid = 0 to n - 1 do
    if not (is_dead e rid) then begin
      iter_slot_args e rid (fun slot ->
          if not (Store.slot_is_set e.e_store slot) then
            waiting.(rid) <- waiting.(rid) + 1);
      if waiting.(rid) = 0 then begin
        queue.(!tail) <- rid;
        incr tail
      end
    end
  done;
  let fired0 = e.e_fired in
  while !head < !tail do
    let rid = queue.(!head) in
    incr head;
    fire e rid;
    iter_consumers gr e.e_target.(rid) (fun c ->
        if not (is_dead e c) then begin
          waiting.(c) <- waiting.(c) - 1;
          if waiting.(c) = 0 then begin
            queue.(!tail) <- c;
            incr tail
          end
        end)
  done;
  let left = Store.missing e.e_store in
  if left > 0 then
    raise
      (Cycle
         (Printf.sprintf
            "dynamic evaluation stuck: %d attribute instances unevaluated \
             (circular tree or missing root attributes)"
            left));
  e.e_fired - fired0

(* ------------------------------------------------------------------ *)
(* Work-stealing schedule                                              *)
(* ------------------------------------------------------------------ *)

(* Same data-driven fixed point as {!run_topo}, parallel across domains.

   Readiness lives in per-instance atomic dependency counters; ready rids
   sit in per-domain Chase-Lev deques ({!Steal}). A domain pops its own
   deque LIFO, and when empty steals half of a pseudo-randomly chosen
   victim's deque FIFO, backing off exponentially between failed probes.
   Firing bypasses the rule memo (its hashtables are not domain-safe) and
   writes targets with {!Store.poke} — the store's set-bitset is
   byte-granular, so bits and counters are restored sequentially after the
   join. Publication is sound: the non-atomic target write precedes the
   atomic counter decrement, and a consumer only reads the slot after
   observing the counter reach zero through that same atomic.

   Termination is an exact task census: [pending] counts rule instances
   that are ready-but-unfired or currently executing. A finishing instance
   increments [pending] for each consumer it releases {e before} pushing
   it and decrements itself only {e after} all pushes, so [pending] can
   only reach zero when no task exists anywhere and none can appear —
   which is either completion or a dependency cycle, distinguished after
   the join by comparing firings against the live-instance count. *)

let gather_quiet e rid =
  let lo = e.e_arg_off.(rid) and hi = e.e_arg_off.(rid + 1) in
  let args = Array.make (hi - lo) Value.Unit in
  for k = lo to hi - 1 do
    let c = e.e_arg_code.(k) in
    args.(k - lo) <-
      (if c >= 0 then Store.peek e.e_store c else e.e_consts.(-c - 1))
  done;
  args

(* ------------------------------------------------------------------ *)
(* Batched refire waves                                                *)
(* ------------------------------------------------------------------ *)

(* Re-fire a merged dirty cone (the union of several edits' dirty cones,
   see {!Incr.edit_batch}) as a wave of parallel rounds.

   Round r holds the cone members whose cone-internal producers all
   completed in rounds < r — a level-synchronous Kahn schedule of the cone
   subgraph. The equality cutoff is preserved per slot: a member none of
   whose argument slots carry this wave's epoch stamp is skipped without
   computing, and a re-fired member stamps its target only when the stored
   value actually moved, so early cutoff still prunes the rounds below it.

   The sequential mode (domains <= 1) drives {!refire} directly — rule
   memo and provenance recording included, which is what lets [--profile]
   attribute blame across a batched wave. The [domains] mode replays the
   {!run_steal} machinery over the cone only: per-domain Chase-Lev deques
   seeded by cone ownership ([owner], typically the edit whose cone first
   reached the member), atomic waiting counters over cone members, poked
   target writes committed sequentially after the join. Like {!run_steal}
   it bypasses the memo and the engine-attached provenance ring (neither
   is domain-safe), and uids come from per-domain stripes above
   [uid_base]. Round counts are a property of the level-synchronous
   schedule, so the domains mode reports [rf_rounds = 0]. *)

type refire_stats = {
  rf_refired : int;
  rf_cutoff : int;
  rf_rounds : int;
  rf_round_refired : int array;  (* refires per level-synchronous round *)
}

let refire_set_seq e gr ~cone ~is_seed ~changed ~epoch =
  let m = Array.length cone in
  let pending = Hashtbl.create (2 * m) in
  Array.iter (fun rid -> Hashtbl.replace pending rid 0) cone;
  Array.iter
    (fun rid ->
      let w = ref 0 in
      iter_slot_args e rid (fun slot ->
          let p = producer gr slot in
          if p >= 0 && p <> rid && (not (is_dead e p)) && Hashtbl.mem pending p
          then incr w);
      Hashtbl.replace pending rid !w)
    cone;
  (* [cone] arrives sorted, so the initial round is ascending; later
     rounds are re-sorted — ready order inside a round is deterministic. *)
  let round =
    ref (List.filter (fun rid -> Hashtbl.find pending rid = 0)
           (Array.to_list cone))
  in
  let refired = ref 0 and cutoff = ref 0 and processed = ref 0 in
  let rounds = ref [] in
  while !round <> [] do
    let next = ref [] and rr = ref 0 in
    List.iter
      (fun rid ->
        incr processed;
        let must =
          is_seed rid
          ||
          let hit = ref false in
          iter_slot_args e rid (fun slot ->
              if changed.(slot) = epoch then hit := true);
          !hit
        in
        (if must then begin
           incr refired;
           incr rr;
           if refire e rid then changed.(e.e_target.(rid)) <- epoch
         end
         else incr cutoff);
        iter_consumers gr e.e_target.(rid) (fun c ->
            if not (is_dead e c) then
              match Hashtbl.find_opt pending c with
              | Some w ->
                  Hashtbl.replace pending c (w - 1);
                  if w = 1 then next := c :: !next
              | None -> ()))
      !round;
    rounds := !rr :: !rounds;
    round := List.sort compare !next
  done;
  if !processed < m then
    raise
      (Cycle
         (Printf.sprintf
            "batched refire stuck: %d of %d cone members unprocessed \
             (cycle through the merged dirty set)"
            (m - !processed) m));
  {
    rf_refired = !refired;
    rf_cutoff = !cutoff;
    rf_rounds = List.length !rounds;
    rf_round_refired = Array.of_list (List.rev !rounds);
  }

let refire_set_steal ~domains ~owner ~uid_base e gr ~cone ~is_seed ~changed
    ~epoch =
  let m = Array.length cone in
  let d_count = max 1 domains in
  let own =
    match owner with
    | Some f -> fun rid -> min (d_count - 1) (max 0 (f rid))
    | None ->
        let idx = ref (-1) in
        fun _ ->
          incr idx;
          !idx * d_count / max 1 m
  in
  let idx_of = Hashtbl.create (2 * m) in
  Array.iteri (fun i rid -> Hashtbl.replace idx_of rid i) cone;
  (* Target set-bits are byte-granular, so record them before the wave:
     cutoff comparisons against unset slots must not trust stale values. *)
  let was_set =
    Array.map (fun rid -> Store.slot_is_set e.e_store e.e_target.(rid)) cone
  in
  let waiting = Array.init (max 1 m) (fun _ -> Atomic.make 0) in
  let deques = Array.init d_count (fun _ -> Steal.create ()) in
  let stats = Array.init d_count (fun _ -> Steal.zero_stats ()) in
  let cutoffs = Array.make d_count 0 in
  let seeded = ref 0 in
  Array.iteri
    (fun i rid ->
      let w = ref 0 in
      iter_slot_args e rid (fun slot ->
          let p = producer gr slot in
          if p >= 0 && p <> rid && (not (is_dead e p)) && Hashtbl.mem idx_of p
          then incr w);
      Atomic.set waiting.(i) !w;
      if !w = 0 then begin
        Steal.push deques.(own rid) rid;
        incr seeded
      end)
    cone;
  let pending = Atomic.make !seeded in
  let failure = Atomic.make None in
  let body d =
    let my = deques.(d) in
    let st = stats.(d) in
    let seed = ref ((((d + 1) * 0x9E3779B1) lor 1) land 0x3FFFFFFF) in
    let next_victim () =
      let x = !seed in
      let x = x lxor (x lsl 13) in
      let x = x lxor (x lsr 7) in
      let x = (x lxor (x lsl 17)) land 0x3FFFFFFF in
      seed := x;
      let v = x mod (d_count - 1) in
      if v >= d then v + 1 else v
    in
    let exec rid =
      let i = Hashtbl.find idx_of rid in
      let must =
        is_seed rid
        ||
        let hit = ref false in
        iter_slot_args e rid (fun slot ->
            (* published by the producer's write before its atomic
               release of our waiting counter *)
            if changed.(slot) = epoch then hit := true);
        !hit
      in
      (if must then begin
         let tgt = e.e_target.(rid) in
         let v = e.e_rules.(rid).Grammar.r_fn (gather_quiet e rid) in
         let moved =
           (not was_set.(i))
           || (try not (Value.equal (Store.peek e.e_store tgt) v)
               with Value.Type_error _ -> true)
         in
         Store.poke e.e_store tgt v;
         if moved then changed.(tgt) <- epoch;
         st.st_fired <- st.st_fired + 1
       end
       else cutoffs.(d) <- cutoffs.(d) + 1);
      iter_consumers gr e.e_target.(rid) (fun c ->
          if (not (is_dead e c)) && Hashtbl.mem idx_of c then begin
            let j = Hashtbl.find idx_of c in
            if Atomic.fetch_and_add waiting.(j) (-1) = 1 then begin
              Atomic.incr pending;
              Steal.push my c;
              let depth = Steal.size my in
              if depth > st.st_hwm then st.st_hwm <- depth
            end
          end);
      ignore (Atomic.fetch_and_add pending (-1))
    in
    let backoff = ref 0 in
    let rec loop () =
      if Atomic.get pending > 0 then begin
        (match Steal.pop my with
        | Some rid ->
            backoff := 0;
            exec rid
        | None ->
            let got =
              d_count > 1
              &&
              (st.st_attempts <- st.st_attempts + 1;
               let k = Steal.steal_half deques.(next_victim ()) ~into:my in
               if k > 0 then begin
                 st.st_successes <- st.st_successes + 1;
                 st.st_stolen <- st.st_stolen + k;
                 true
               end
               else false)
            in
            if got then backoff := 0
            else begin
              let spins = 1 lsl min !backoff 10 in
              for _ = 1 to spins do
                Domain.cpu_relax ()
              done;
              st.st_idle <- st.st_idle +. float_of_int spins;
              if !backoff < 16 then incr backoff
            end);
        loop ()
      end
    in
    let cursor = ref (uid_base + (d * Uid.stride)) in
    try Uid.with_counter cursor loop
    with exn ->
      Atomic.set failure (Some exn);
      Atomic.set pending 0
  in
  let spawned =
    Array.init (d_count - 1) (fun i -> Domain.spawn (fun () -> body (i + 1)))
  in
  body 0;
  Array.iter Domain.join spawned;
  (match Atomic.get failure with Some exn -> raise exn | None -> ());
  let fired = ref 0 in
  Array.iter (fun (st : Steal.stats) -> fired := !fired + st.st_fired) stats;
  e.e_fired <- e.e_fired + !fired;
  let cutoff = Array.fold_left ( + ) 0 cutoffs in
  (* Restore store invariants for every poked target. A drained counter
     with a cutoff means the target was already set (an unset target
     implies an appended seed, which always re-fires), so the idempotent
     commit is safe on both. *)
  Array.iteri
    (fun i rid ->
      if Atomic.get waiting.(i) <= 0 then
        Store.commit_slot e.e_store e.e_target.(rid))
    cone;
  if !fired + cutoff < m then
    raise
      (Cycle
         (Printf.sprintf
            "batched refire stuck: %d of %d cone members unprocessed \
             (cycle through the merged dirty set)"
            (m - !fired - cutoff) m));
  {
    rf_refired = !fired;
    rf_cutoff = cutoff;
    rf_rounds = 0;
    rf_round_refired = [||];
  }

let refire_set ?(domains = 1) ?owner ?(uid_base = 0) e gr ~cone ~is_seed
    ~changed ~epoch =
  if domains <= 1 then refire_set_seq e gr ~cone ~is_seed ~changed ~epoch
  else
    refire_set_steal ~domains ~owner ~uid_base e gr ~cone ~is_seed ~changed
      ~epoch

let run_steal ?(domains = 2) ?owner ?(uid_base = 0) ?prov
    ?(prov_clock = fun () -> 0.0) e gr =
  let n = e.e_n in
  let d_count = max 1 domains in
  let owner =
    match owner with
    | Some f -> fun rid -> min (d_count - 1) (max 0 (f rid))
    | None -> fun rid -> if n = 0 then 0 else rid * d_count / n
  in
  let waiting = Array.init (max 1 n) (fun _ -> Atomic.make 0) in
  let deques = Array.init d_count (fun _ -> Steal.create ()) in
  let stats = Array.init d_count (fun _ -> Steal.zero_stats ()) in
  let live = ref 0 and seeded = ref 0 in
  for rid = 0 to n - 1 do
    if not (is_dead e rid) then begin
      incr live;
      let w = ref 0 in
      iter_slot_args e rid (fun slot ->
          if not (Store.slot_is_set e.e_store slot) then incr w);
      Atomic.set waiting.(rid) !w;
      if !w = 0 then begin
        Steal.push deques.(owner rid) rid;
        incr seeded
      end
    end
  done;
  let pending = Atomic.make !seeded in
  let failure = Atomic.make None in
  let body d =
    let my = deques.(d) in
    let st = stats.(d) in
    (* deterministic per-domain xorshift for victim selection *)
    let seed = ref ((((d + 1) * 0x9E3779B1) lor 1) land 0x3FFFFFFF) in
    let next_victim () =
      let x = !seed in
      let x = x lxor (x lsl 13) in
      let x = x lxor (x lsr 7) in
      let x = (x lxor (x lsl 17)) land 0x3FFFFFFF in
      seed := x;
      let v = x mod (d_count - 1) in
      if v >= d then v + 1 else v
    in
    (* each domain records into its own ring; pid = domain id *)
    let my_prov = match prov with Some ps -> ps.(d) | None -> Prov.disabled in
    let exec rid =
      let t0 = if Prov.enabled my_prov then prov_clock () else 0.0 in
      let v = e.e_rules.(rid).Grammar.r_fn (gather_quiet e rid) in
      Store.poke e.e_store e.e_target.(rid) v;
      if Prov.enabled my_prov then begin
        Prov.record my_prov ~rid ~pid:d ~target:e.e_target.(rid) ~t0
          ~t1:(prov_clock ()) ~replay:false;
        iter_slot_args e rid (fun slot -> Prov.arg my_prov slot)
      end;
      st.st_fired <- st.st_fired + 1;
      iter_consumers gr e.e_target.(rid) (fun c ->
          if (not (is_dead e c)) && Atomic.fetch_and_add waiting.(c) (-1) = 1
          then begin
            Atomic.incr pending;
            Steal.push my c;
            let depth = Steal.size my in
            if depth > st.st_hwm then st.st_hwm <- depth
          end);
      ignore (Atomic.fetch_and_add pending (-1))
    in
    let backoff = ref 0 in
    let rec loop () =
      if Atomic.get pending > 0 then begin
        (match Steal.pop my with
        | Some rid ->
            backoff := 0;
            exec rid
        | None ->
            let got =
              d_count > 1
              &&
              (st.st_attempts <- st.st_attempts + 1;
               let k = Steal.steal_half deques.(next_victim ()) ~into:my in
               if k > 0 then begin
                 st.st_successes <- st.st_successes + 1;
                 st.st_stolen <- st.st_stolen + k;
                 true
               end
               else false)
            in
            if got then backoff := 0
            else begin
              let spins = 1 lsl min !backoff 10 in
              for _ = 1 to spins do
                Domain.cpu_relax ()
              done;
              st.st_idle <- st.st_idle +. float_of_int spins;
              if !backoff < 16 then incr backoff
            end);
        loop ()
      end
    in
    (* fresh domains have no ambient uid base; give each its own stripe *)
    let cursor = ref (uid_base + (d * Uid.stride)) in
    try Uid.with_counter cursor loop
    with exn ->
      (* poison the census so the other domains drain and exit *)
      Atomic.set failure (Some exn);
      Atomic.set pending 0
  in
  let spawned =
    Array.init (d_count - 1) (fun i -> Domain.spawn (fun () -> body (i + 1)))
  in
  body 0;
  Array.iter Domain.join spawned;
  (match Atomic.get failure with Some exn -> raise exn | None -> ());
  (* sequential epilogue: restore store invariants for every fired target
     (a live rid fired iff its dependency counter drained to zero) *)
  let fired = ref 0 in
  Array.iter (fun (st : Steal.stats) -> fired := !fired + st.st_fired) stats;
  e.e_fired <- e.e_fired + !fired;
  for rid = 0 to n - 1 do
    if (not (is_dead e rid)) && Atomic.get waiting.(rid) <= 0 then
      Store.commit_slot e.e_store e.e_target.(rid)
  done;
  if !fired < !live then
    raise
      (Cycle
         (Printf.sprintf
            "dynamic evaluation stuck: %d attribute instances unevaluated \
             (circular tree or missing root attributes)"
            (Store.missing e.e_store)));
  (!fired, stats)
