examples/librarian_demo.ml: Driver List Netsim Pag_parallel Pascal Printf Progen Runner String
