open Pag_core
open Pag_eval
open Netsim

(* ------------------------------------------------------------------ *)
(* Run setup shared by pagc, agrun and bench                           *)
(* ------------------------------------------------------------------ *)

type spec = {
  sp_machines : int;
  sp_mode : Worker.mode;
  sp_schedule : [ `Static | `Dynamic | `Steal ];
  sp_transport : [ `Sim | `Domains ];
  sp_granularity : float;
  sp_librarian : bool;
  sp_priority : bool;
  sp_hashcons : bool;
  sp_dag : bool;
  sp_telemetry : bool;
  sp_faults : Faults.spec option;
  sp_fault_rto : float option;
  sp_fault_watchdog : float option;
  sp_phase_label : int -> string option;
  sp_provenance : bool;
}

let spec ?(mode = `Combined) ?(schedule = `Static) ?(transport = `Sim)
    ?(granularity = 1.0) ?(librarian = true) ?(priority = true)
    ?(hashcons = false) ?(dag = false) ?(telemetry = false) ?faults ?fault_rto
    ?fault_watchdog ?(phase_label = fun _ -> None) ?(provenance = false)
    machines =
  {
    sp_machines = machines;
    (* the all-dynamic schedule is the classic protocol in dynamic mode *)
    sp_mode = (if schedule = `Dynamic then `Dynamic else mode);
    sp_schedule = schedule;
    sp_transport = transport;
    sp_granularity = granularity;
    sp_librarian = librarian;
    sp_priority = priority;
    sp_hashcons = hashcons;
    sp_dag = dag;
    sp_telemetry = telemetry;
    sp_faults = faults;
    sp_fault_rto = fault_rto;
    sp_fault_watchdog = fault_watchdog;
    sp_phase_label = phase_label;
    sp_provenance = provenance;
  }

let options s =
  {
    Runner.default_options with
    Runner.machines = s.sp_machines;
    mode = s.sp_mode;
    schedule = s.sp_schedule;
    granularity = s.sp_granularity;
    use_librarian = s.sp_librarian;
    use_priority = s.sp_priority;
    use_hashcons = s.sp_hashcons;
    use_dag = s.sp_dag;
    telemetry = s.sp_telemetry;
    faults = s.sp_faults;
    fault_rto = s.sp_fault_rto;
    fault_watchdog = s.sp_fault_watchdog;
    phase_label = s.sp_phase_label;
    provenance = s.sp_provenance;
  }

let run s g plan tree =
  let o = options s in
  match s.sp_transport with
  | `Sim -> Runner.run_sim o g plan tree
  | `Domains -> Runner.run_domains o g plan tree

(* ------------------------------------------------------------------ *)
(* Edit sessions: incremental re-evaluation over the network model     *)
(* ------------------------------------------------------------------ *)

(* Each edit gets its own tiny simulation (the long-lived machine
   processes of a real editor service, collapsed to one message wave per
   edit). The functor application is per message type, so this simulator
   coexists with {!Runner}'s. *)
module ES = Sim.Make (struct
  type msg = Message.t
end)

type edit_session = {
  es_spec : spec;
  es_g : Grammar.t;
  es_incr : Incr.session;
  mutable es_plan : Split.plan;
}

type edit_report = {
  er_dirty : int;
  er_refired : int;
  er_cutoff : int;
  er_fallback : bool;
  er_prop_ms : float;
  er_owner : int;
  er_boundary_changed : int;
  er_boundary_total : int;
  er_bytes_incr : int;
  er_bytes_full : int;
  er_messages : int;
  er_retransmits : int;
  er_latency : float;
}

let open_session ?obs ?memo ?prov ?frontier sp g tree =
  let prov =
    match prov with
    | Some p -> p
    | None ->
        if sp.sp_provenance then
          Pag_obs.Prov.create ~arity:(Causal.arity_for g) ()
        else Pag_obs.Prov.disabled
  in
  let incr =
    Incr.start ?obs ?memo ~hashcons:sp.sp_hashcons ~dag:sp.sp_dag ~prov
      ?frontier g tree
  in
  let plan =
    Split.decompose g (Incr.tree incr) ~machines:sp.sp_machines
      ~granularity:sp.sp_granularity
  in
  { es_spec = sp; es_g = g; es_incr = incr; es_plan = plan }

let tree es = Incr.tree es.es_incr

let store es = Incr.store es.es_incr

let live_slots es = Incr.live_slots es.es_incr

let totals es = Incr.totals es.es_incr

let engine es = Incr.engine es.es_incr

let prov es = Incr.prov es.es_incr

(* Attributes of a boundary node, with their index into the symbol's
   declaration array (the index doubles as the wire reference id via
   {!Pag_eval.Store.slot_of}). *)
let attrs_of es (n : Tree.t) kind =
  let s = Grammar.symbol es.es_g n.Tree.sym in
  Array.to_list s.Grammar.s_attrs
  |> List.mapi (fun i a -> (i, a))
  |> List.filter (fun (_, (a : Grammar.attr_decl)) -> a.Grammar.a_kind = kind)

let rec message_label = function
  | Message.Edit { node; _ } -> Printf.sprintf "edit %d" node
  | Message.Attr { attr; _ } -> attr
  | Message.Attr_ref { attr; _ } -> attr ^ " (ref)"
  | Message.Data { payload; _ } -> message_label payload
  | Message.Ack _ -> "ack"
  | m -> Format.asprintf "%a" Message.pp m

(* One attribute crossing a machine boundary: changed since the last edit
   (per {!Incr.changed}) ships in full, unchanged ships as a fixed-size
   intern reference — the receiver already holds the value. *)
let boundary_message es ~src (b : Tree.t) attr_idx (a : Grammar.attr_decl) =
  let st = Incr.store es.es_incr in
  if Incr.changed es.es_incr b a.Grammar.a_name then
    Message.Attr
      {
        node = b.Tree.id;
        attr = a.Grammar.a_name;
        value = Store.get st b a.Grammar.a_name;
      }
  else
    Message.Attr_ref
      {
        src;
        node = b.Tree.id;
        attr = a.Grammar.a_name;
        iid = Store.slot_of st b ~attr_idx;
        hash = 0;
      }

(* The per-edit message wave. The owner machine receives the re-parsed
   replacement, pays the rebuild and the whole propagation (the model
   charges all re-fired rules to the edit's owner), then boundary
   attributes flow through the fragment tree: inherited attributes down
   from every fragment to its children, synthesized attributes up to its
   parent, and the root fragment finally reports the tree's synthesized
   attributes to the coordinator. The wave visits every boundary every
   edit; what the equality cutoff left unchanged crosses as references. *)
let simulate es ~owner_frag ~edit_node ~bytes (st : Incr.edit_stats) =
  let sp = es.es_spec in
  let cost = Cost.default in
  let frags = Split.fragments es.es_plan in
  let nfrags = Array.length frags in
  let root = Incr.tree es.es_incr in
  let children =
    let t = Array.make nfrags [] in
    Array.iter
      (fun (f : Split.fragment) ->
        match f.Split.fr_parent with
        | Some p -> t.(p) <- f :: t.(p)
        | None -> ())
      frags;
    Array.map List.rev t
  in
  let owner_delay =
    (float_of_int bytes *. cost.Cost.rebuild_per_byte)
    +. (float_of_int st.Incr.ed_dirty *. cost.Cost.build_node)
    +. float_of_int st.Incr.ed_refired
       *. Cost.rule_cost cost ~dynamic:true
  in
  let sim = ES.create () in
  Option.iter (ES.set_faults sim) sp.sp_faults;
  let faulty = Option.is_some sp.sp_faults in
  (* The owner acknowledges nothing while it propagates; scale the
     retransmission timeout so the backoff horizon dwarfs that phase. *)
  let rto = Float.max 0.1 (owner_delay /. 4.0) in
  let links = ref [] in
  let env_for id =
    let raw =
      {
        Transport.e_id = id;
        e_delay = ES.delay;
        e_send =
          (fun ~dst m ->
            ES.send ~dst ~size:(Message.size m) ~label:(message_label m) m);
        e_recv = ES.recv;
        e_recv_timeout = ES.recv_timeout;
        e_time = ES.time;
        e_mark = ES.mark;
        e_flush = (fun () -> ());
      }
    in
    if faulty then begin
      let l = Reliable.wrap ~rto ~max_tries:8 raw in
      links := l :: !links;
      Reliable.env l
    end
    else raw
  in
  let finish = ref 0.0 in
  (* pid 0: the coordinator (parser) hands the edit to its owner and waits
     for the refreshed root attributes. *)
  let coord_env = env_for 0 in
  let root_syn = attrs_of es root Grammar.Syn in
  let _ =
    ES.spawn sim ~name:"parser" (fun () ->
        coord_env.Transport.e_send ~dst:(owner_frag + 1)
          (Message.Edit { node = edit_node; bytes });
        let got = ref 0 in
        while !got < List.length root_syn do
          match coord_env.Transport.e_recv () with
          | Message.Attr _ | Message.Attr_ref _ -> incr got
          | _ -> ()
        done;
        finish := ES.time ();
        coord_env.Transport.e_flush ())
  in
  (* pids 1..nfrags: one machine per fragment. *)
  Array.iter
    (fun (f : Split.fragment) ->
      let id = f.Split.fr_id + 1 in
      let env = env_for id in
      let is_owner = f.Split.fr_id = owner_frag in
      let inh_expected =
        match f.Split.fr_parent with
        | Some _ -> List.length (attrs_of es f.Split.fr_root Grammar.Inh)
        | None -> 0
      in
      let syn_expected =
        List.fold_left
          (fun acc (c : Split.fragment) ->
            acc + List.length (attrs_of es c.Split.fr_root Grammar.Syn))
          0
          children.(f.Split.fr_id)
      in
      let _ =
        ES.spawn sim
          ~name:(Runner.machine_name ~fragments:nfrags id)
          (fun () ->
            let seen = ref 0 in
            if is_owner then begin
              let rec wait () =
                match env.Transport.e_recv () with
                | Message.Edit _ -> ()
                | _ ->
                    incr seen;
                    wait ()
              in
              wait ();
              env.Transport.e_delay owner_delay
            end;
            (* inherited attributes down to each child fragment *)
            List.iter
              (fun (c : Split.fragment) ->
                List.iter
                  (fun (i, a) ->
                    env.Transport.e_send ~dst:(c.Split.fr_id + 1)
                      (boundary_message es ~src:id c.Split.fr_root i a))
                  (attrs_of es c.Split.fr_root Grammar.Inh))
              children.(f.Split.fr_id);
            (* wait out the parent's inherited and the children's
               synthesized boundary attributes *)
            while !seen < inh_expected + syn_expected do
              (match env.Transport.e_recv () with
              | Message.Edit _ -> ()
              | _ -> incr seen);
            done;
            (* synthesized attributes up: to the parent fragment's machine,
               or — for the root fragment — to the coordinator *)
            let dst, up =
              match f.Split.fr_parent with
              | Some p -> (p + 1, attrs_of es f.Split.fr_root Grammar.Syn)
              | None -> (0, root_syn)
            in
            List.iter
              (fun (i, a) ->
                env.Transport.e_send ~dst
                  (boundary_message es ~src:id f.Split.fr_root i a))
              up;
            env.Transport.e_flush ())
      in
      ())
    frags;
  ES.run sim;
  let net = ES.network sim in
  (* Boundary census: what crossed a machine boundary, and how much of it
     the cutoff kept to a reference. *)
  let changed = ref 0 and total = ref 0 in
  let census (b : Tree.t) kind =
    List.iter
      (fun (_, (a : Grammar.attr_decl)) ->
        incr total;
        if Incr.changed es.es_incr b a.Grammar.a_name then incr changed)
      (attrs_of es b kind)
  in
  Array.iter
    (fun (f : Split.fragment) ->
      match f.Split.fr_parent with
      | Some _ ->
          census f.Split.fr_root Grammar.Syn;
          census f.Split.fr_root Grammar.Inh
      | None -> ())
    frags;
  census root Grammar.Syn;
  (* A from-scratch distributed recompile ships every fragment's subtree
     plus every boundary attribute in full. *)
  let full_attr (b : Tree.t) (a : Grammar.attr_decl) =
    Message.size
      (Message.Attr
         {
           node = b.Tree.id;
           attr = a.Grammar.a_name;
           value = Store.get (Incr.store es.es_incr) b a.Grammar.a_name;
         })
  in
  let bytes_full = ref (nfrags * Message.header_bytes + Tree.byte_size root) in
  let attr_census (b : Tree.t) kind =
    List.iter
      (fun (_, a) -> bytes_full := !bytes_full + full_attr b a)
      (attrs_of es b kind)
  in
  Array.iter
    (fun (f : Split.fragment) ->
      match f.Split.fr_parent with
      | Some _ ->
          attr_census f.Split.fr_root Grammar.Syn;
          attr_census f.Split.fr_root Grammar.Inh
      | None -> ())
    frags;
  attr_census root Grammar.Syn;
  {
    er_dirty = st.Incr.ed_dirty;
    er_refired = st.Incr.ed_refired;
    er_cutoff = st.Incr.ed_cutoff;
    er_fallback = st.Incr.ed_fallback;
    er_prop_ms = st.Incr.ed_prop_ms;
    er_owner = owner_frag;
    er_boundary_changed = !changed;
    er_boundary_total = !total;
    er_bytes_incr = Ethernet.bytes_sent net;
    er_bytes_full = !bytes_full;
    er_messages = Ethernet.messages_sent net;
    er_retransmits =
      List.fold_left
        (fun acc l -> acc + (Reliable.stats l).Reliable.rs_retransmits)
        0 !links;
    er_latency = !finish;
  }

(* ------------------------------------------------------------------ *)
(* Batched edit waves                                                  *)
(* ------------------------------------------------------------------ *)

type batch_report = {
  br_edits : int;
  br_waves : int;
  br_conflicts : int;
  br_dirty : int;
  br_refired : int;
  br_cutoff : int;
  br_fallbacks : int;
  br_rounds : int;
  br_boundary_changed : int;
  br_boundary_total : int;
  br_bytes : int;
  br_messages : int;
  br_retransmits : int;
  br_latency : float;
}

(* The batched wave: one dispatch carries every replacement plus the
   cone-merge metadata, the owner pays the grafts and cone construction,
   and the merged refire runs as a steal wave co-scheduled across ALL
   fragment machines — the owner ships cone chunks out, every machine
   works the level-synchronous rounds in parallel (a round costs its
   ceiling share, [ceil (fires / machines)] steal-priced rules), and
   results return to the owner before one boundary flow settles the
   frontier. Serial application pays the owner-sequential refire and a
   full boundary wave per edit; the batch pays the refire in parallel
   rounds and the boundary wave once. *)
let simulate_batch es ~owner_frag ~edit_node ~bytes (wv : Incr.wave_stats) =
  let sp = es.es_spec in
  let cost = Cost.default in
  let frags = Split.fragments es.es_plan in
  let nfrags = Array.length frags in
  let root = Incr.tree es.es_incr in
  let children =
    let t = Array.make nfrags [] in
    Array.iter
      (fun (f : Split.fragment) ->
        match f.Split.fr_parent with
        | Some p -> t.(p) <- f :: t.(p)
        | None -> ())
      frags;
    Array.map List.rev t
  in
  (* Sequential prefix at the owner: rebuild the replacements, walk the
     merged cone. *)
  let owner_seq =
    (float_of_int bytes *. cost.Cost.rebuild_per_byte)
    +. (float_of_int wv.Incr.wv_dirty *. cost.Cost.build_node)
  in
  let assist = max 1 nfrags in
  (* Per-machine share of the co-scheduled refire wave; a rebuilt wave
     (fallback, no round structure) re-fires sequentially at the owner. *)
  let share_work =
    Array.fold_left
      (fun acc r ->
        acc
        +. Float.of_int ((r + assist - 1) / assist)
           *. cost.Cost.steal_rule)
      0.0 wv.Incr.wv_round_refired
  in
  let assisted = Array.length wv.Incr.wv_round_refired > 0 && nfrags > 1 in
  let owner_delay =
    if Array.length wv.Incr.wv_round_refired = 0 then
      owner_seq
      +. float_of_int wv.Incr.wv_refired *. Cost.rule_cost cost ~dynamic:true
    else owner_seq
  in
  (* Cone-merge metadata: one descriptor per edit in the dispatch, one per
     shipped cone member in the assist chunks. *)
  let meta_bytes = 16 * wv.Incr.wv_edits in
  let chunk_bytes = wv.Incr.wv_refired / assist * 16 in
  let sim = ES.create () in
  Option.iter (ES.set_faults sim) sp.sp_faults;
  let faulty = Option.is_some sp.sp_faults in
  let rto = Float.max 0.1 ((owner_delay +. share_work) /. 4.0) in
  let links = ref [] in
  let env_for id =
    let raw =
      {
        Transport.e_id = id;
        e_delay = ES.delay;
        e_send =
          (fun ~dst m ->
            ES.send ~dst ~size:(Message.size m) ~label:(message_label m) m);
        e_recv = ES.recv;
        e_recv_timeout = ES.recv_timeout;
        e_time = ES.time;
        e_mark = ES.mark;
        e_flush = (fun () -> ());
      }
    in
    if faulty then begin
      let l = Reliable.wrap ~rto ~max_tries:8 raw in
      links := l :: !links;
      Reliable.env l
    end
    else raw
  in
  let finish = ref 0.0 in
  let coord_env = env_for 0 in
  let root_syn = attrs_of es root Grammar.Syn in
  let _ =
    ES.spawn sim ~name:"parser" (fun () ->
        coord_env.Transport.e_send ~dst:(owner_frag + 1)
          (Message.Edit { node = edit_node; bytes = bytes + meta_bytes });
        let got = ref 0 in
        while !got < List.length root_syn do
          match coord_env.Transport.e_recv () with
          | Message.Attr _ | Message.Attr_ref _ -> incr got
          | _ -> ()
        done;
        finish := ES.time ();
        coord_env.Transport.e_flush ())
  in
  Array.iter
    (fun (f : Split.fragment) ->
      let id = f.Split.fr_id + 1 in
      let env = env_for id in
      let is_owner = f.Split.fr_id = owner_frag in
      let inh_expected =
        match f.Split.fr_parent with
        | Some _ -> List.length (attrs_of es f.Split.fr_root Grammar.Inh)
        | None -> 0
      in
      let syn_expected =
        List.fold_left
          (fun acc (c : Split.fragment) ->
            acc + List.length (attrs_of es c.Split.fr_root Grammar.Syn))
          0
          children.(f.Split.fr_id)
      in
      let _ =
        ES.spawn sim
          ~name:(Runner.machine_name ~fragments:nfrags id)
          (fun () ->
            let seen = ref 0 in
            (* [Edit]-tagged messages (dispatch, cone chunks, chunk
               results) never count toward the boundary census. *)
            let rec wait_edit () =
              match env.Transport.e_recv () with
              | Message.Edit _ -> ()
              | _ ->
                  incr seen;
                  wait_edit ()
            in
            if is_owner then begin
              wait_edit ();
              env.Transport.e_delay owner_delay;
              if assisted then begin
                (* ship cone chunks, work own share, collect results *)
                Array.iter
                  (fun (g : Split.fragment) ->
                    if g.Split.fr_id <> owner_frag then
                      env.Transport.e_send ~dst:(g.Split.fr_id + 1)
                        (Message.Edit { node = -1; bytes = chunk_bytes }))
                  frags;
                env.Transport.e_delay share_work;
                let results = ref 0 in
                while !results < nfrags - 1 do
                  match env.Transport.e_recv () with
                  | Message.Edit _ -> incr results
                  | _ -> incr seen
                done
              end
              else if Array.length wv.Incr.wv_round_refired > 0 then
                env.Transport.e_delay share_work
            end
            else if assisted then begin
              wait_edit ();
              env.Transport.e_delay share_work;
              env.Transport.e_send ~dst:(owner_frag + 1)
                (Message.Edit { node = -1; bytes = chunk_bytes })
            end;
            List.iter
              (fun (c : Split.fragment) ->
                List.iter
                  (fun (i, a) ->
                    env.Transport.e_send ~dst:(c.Split.fr_id + 1)
                      (boundary_message es ~src:id c.Split.fr_root i a))
                  (attrs_of es c.Split.fr_root Grammar.Inh))
              children.(f.Split.fr_id);
            while !seen < inh_expected + syn_expected do
              (match env.Transport.e_recv () with
              | Message.Edit _ -> ()
              | _ -> incr seen);
            done;
            let dst, up =
              match f.Split.fr_parent with
              | Some p -> (p + 1, attrs_of es f.Split.fr_root Grammar.Syn)
              | None -> (0, root_syn)
            in
            List.iter
              (fun (i, a) ->
                env.Transport.e_send ~dst
                  (boundary_message es ~src:id f.Split.fr_root i a))
              up;
            env.Transport.e_flush ())
      in
      ())
    frags;
  ES.run sim;
  let net = ES.network sim in
  let changed = ref 0 and total = ref 0 in
  let census (b : Tree.t) kind =
    List.iter
      (fun (_, (a : Grammar.attr_decl)) ->
        incr total;
        if Incr.changed es.es_incr b a.Grammar.a_name then incr changed)
      (attrs_of es b kind)
  in
  Array.iter
    (fun (f : Split.fragment) ->
      match f.Split.fr_parent with
      | Some _ ->
          census f.Split.fr_root Grammar.Syn;
          census f.Split.fr_root Grammar.Inh
      | None -> ())
    frags;
  census root Grammar.Syn;
  {
    br_edits = wv.Incr.wv_edits;
    br_waves = wv.Incr.wv_waves;
    br_conflicts = wv.Incr.wv_conflicts;
    br_dirty = wv.Incr.wv_dirty;
    br_refired = wv.Incr.wv_refired;
    br_cutoff = wv.Incr.wv_cutoff;
    br_fallbacks = wv.Incr.wv_fallbacks;
    br_rounds = wv.Incr.wv_rounds;
    br_boundary_changed = !changed;
    br_boundary_total = !total;
    br_bytes = Ethernet.bytes_sent net;
    br_messages = Ethernet.messages_sent net;
    br_retransmits =
      List.fold_left
        (fun acc l -> acc + (Reliable.stats l).Reliable.rs_retransmits)
        0 !links;
    br_latency = !finish;
  }

let no_batch (wv : Incr.wave_stats) =
  {
    br_edits = wv.Incr.wv_edits;
    br_waves = wv.Incr.wv_waves;
    br_conflicts = wv.Incr.wv_conflicts;
    br_dirty = wv.Incr.wv_dirty;
    br_refired = wv.Incr.wv_refired;
    br_cutoff = wv.Incr.wv_cutoff;
    br_fallbacks = wv.Incr.wv_fallbacks;
    br_rounds = wv.Incr.wv_rounds;
    br_boundary_changed = 0;
    br_boundary_total = 0;
    br_bytes = 0;
    br_messages = 0;
    br_retransmits = 0;
    br_latency = 0.0;
  }

let no_wave (st : Incr.edit_stats) =
  {
    er_dirty = st.Incr.ed_dirty;
    er_refired = st.Incr.ed_refired;
    er_cutoff = st.Incr.ed_cutoff;
    er_fallback = st.Incr.ed_fallback;
    er_prop_ms = st.Incr.ed_prop_ms;
    er_owner = 0;
    er_boundary_changed = 0;
    er_boundary_total = 0;
    er_bytes_incr = 0;
    er_bytes_full = 0;
    er_messages = 0;
    er_retransmits = 0;
    er_latency = 0.0;
  }

(* The parser re-decomposes after every structural edit: a replacement may
   have swapped out a subtree containing a fragment root, and the wave must
   ship boundary attributes of live nodes only. The fresh plan is also what
   the owner lookup runs against — the edit site is by construction live. *)
let refresh_plan es =
  es.es_plan <-
    Split.decompose es.es_g (Incr.tree es.es_incr)
      ~machines:es.es_spec.sp_machines ~granularity:es.es_spec.sp_granularity

let edit es next =
  match Tree.diff (Incr.tree es.es_incr) next with
  | Tree.Equal -> no_wave (Incr.edit es.es_incr next)
  | Tree.Root ->
      let st = Incr.edit es.es_incr next in
      refresh_plan es;
      let root = Incr.tree es.es_incr in
      simulate es ~owner_frag:0 ~edit_node:root.Tree.id
        ~bytes:(Tree.byte_size root) st
  | Tree.Subtree { parent; pos; repl } ->
      let bytes = Tree.byte_size repl in
      let st = Incr.replace es.es_incr ~parent ~pos repl in
      refresh_plan es;
      let owner_frag =
        Option.value (Split.owner_of es.es_plan parent) ~default:0
      in
      simulate es ~owner_frag ~edit_node:parent.Tree.id ~bytes st

let edit_batch es nexts =
  let wv = Incr.edit_batch es.es_incr nexts in
  refresh_plan es;
  if wv.Incr.wv_dirty = 0 && wv.Incr.wv_refired = 0 && wv.Incr.wv_fallbacks = 0
  then no_batch wv
  else
    let root = Incr.tree es.es_incr in
    simulate_batch es ~owner_frag:0 ~edit_node:root.Tree.id
      ~bytes:wv.Incr.wv_bytes wv
