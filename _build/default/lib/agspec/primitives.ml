(* The standard library of semantic functions available to specifications —
   the paper's "standard library of symbol table routines" (st_create,
   st_add, st_lookup, the flattening functions) plus arithmetic and string
   helpers. They are ordinary OCaml functions "trusted not to produce any
   visible side effects". *)

open Pag_core
open Pag_util

exception Unknown_function of string

exception Runtime_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let as_int = Value.as_int

let as_str ~ctx v = Rope.to_string (Value.as_str ~ctx v)

let arity name k f args =
  if List.length args <> k then
    err "%s expects %d arguments, got %d" name k (List.length args)
  else f (Array.of_list args)

let table : (string, Value.t list -> Value.t) Hashtbl.t = Hashtbl.create 32

let register name k f = Hashtbl.replace table name (arity name k f)

let () =
  register "st_create" 0 (fun _ -> Value.Tab Symtab.empty);
  register "st_add" 3 (fun a ->
      let tab = Value.as_tab ~ctx:"st_add" a.(0) in
      Value.Tab (Symtab.add tab (as_str ~ctx:"st_add" a.(1)) a.(2)));
  register "st_lookup" 2 (fun a ->
      let tab = Value.as_tab ~ctx:"st_lookup" a.(0) in
      let name = as_str ~ctx:"st_lookup" a.(1) in
      match Symtab.lookup tab name with
      | Some v -> v
      | None -> err "st_lookup: unbound identifier %s" name);
  register "add" 2 (fun a ->
      Value.Int (as_int ~ctx:"add" a.(0) + as_int ~ctx:"add" a.(1)));
  register "sub" 2 (fun a ->
      Value.Int (as_int ~ctx:"sub" a.(0) - as_int ~ctx:"sub" a.(1)));
  register "mul" 2 (fun a ->
      Value.Int (as_int ~ctx:"mul" a.(0) * as_int ~ctx:"mul" a.(1)));
  register "neg" 1 (fun a -> Value.Int (-as_int ~ctx:"neg" a.(0)));
  register "concat" 2 (fun a ->
      Value.Str
        (Rope.concat (Value.as_str ~ctx:"concat" a.(0)) (Value.as_str ~ctx:"concat" a.(1))));
  register "int_to_string" 1 (fun a ->
      Value.str (string_of_int (as_int ~ctx:"int_to_string" a.(0))));
  register "code" 1 (fun a ->
      Codestr.value (Codestr.of_rope (Value.as_str ~ctx:"code" a.(0))));
  register "code_concat" 2 (fun a ->
      Codestr.value
        (Codestr.concat
           (Codestr.of_value ~ctx:"code_concat" a.(0))
           (Codestr.of_value ~ctx:"code_concat" a.(1))));
  register "nil" 0 (fun _ -> Value.List []);
  register "cons" 2 (fun a ->
      Value.List (a.(0) :: Value.as_list ~ctx:"cons" a.(1)));
  register "append" 2 (fun a ->
      Value.List
        (Value.as_list ~ctx:"append" a.(0) @ Value.as_list ~ctx:"append" a.(1)));
  register "pair" 2 (fun a -> Value.Pair (a.(0), a.(1)));
  register "fresh_label" 0 (fun _ -> Value.Int (Uid.fresh ()))

let lookup name =
  match Hashtbl.find_opt table name with
  | Some f -> f
  | None -> raise (Unknown_function name)

let names () = Hashtbl.fold (fun k _ acc -> k :: acc) table []
