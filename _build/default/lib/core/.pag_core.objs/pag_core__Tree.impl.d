lib/core/tree.ml: Array Format Grammar List Printf String Value
