test/test_pascal_edge.ml: Alcotest Driver Interp Pag_parallel Parser Pascal String
