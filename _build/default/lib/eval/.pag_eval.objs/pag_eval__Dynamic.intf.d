lib/eval/dynamic.mli: Grammar Pag_core Store Tree Value
