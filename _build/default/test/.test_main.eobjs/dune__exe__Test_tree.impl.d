test/test_tree.ml: Alcotest Array Expr_ag Pag_core Pag_grammars Tree Value
