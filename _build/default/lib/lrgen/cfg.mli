(** Context-free grammars for the LALR(1) generator (the repository's YACC:
    the paper generates its parsers with YACC from the same specification
    that drives the evaluator generator).

    Terminals and nonterminals are named; a production may name a terminal
    whose precedence it takes (YACC's implicit last-terminal rule applies
    otherwise). Precedence levels are declared low to high, as %left/%right
    /%nonassoc lines are in YACC input. *)

type assoc = Left | Right | Nonassoc

type production = {
  cp_name : string;  (** unique; carried through to reduce callbacks *)
  cp_lhs : string;
  cp_rhs : string list;
  cp_prec : string option;  (** terminal whose precedence the rule takes *)
}

type t

(** [make ~terminals ~start ~prec prods]: [prec] lists precedence levels low
    to high, each level an associativity and its terminals. Nonterminals are
    inferred from left-hand sides. Validates that rhs symbols are declared
    terminals or defined nonterminals and that the start symbol is
    defined. *)
val make :
  terminals:string list ->
  start:string ->
  ?prec:(assoc * string list) list ->
  production list ->
  t

exception Error of string

val start : t -> string

val productions : t -> production array

val terminals : t -> string list

val nonterminals : t -> string list

val is_terminal : t -> string -> bool

(** Precedence level (1-based, higher binds tighter) and associativity. *)
val prec_of_terminal : t -> string -> (int * assoc) option

(** Effective precedence of a production: its [cp_prec] terminal's, or the
    last terminal of its rhs. *)
val prec_of_production : t -> production -> (int * assoc) option

(** Productions with the given left-hand side. *)
val prods_for : t -> string -> (int * production) list

(** End-of-input marker used by the generator and engine. *)
val eof : string
