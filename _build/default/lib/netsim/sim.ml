open Pag_util

module Make (M : sig
  type msg
end) =
struct
  type pid = int

  type _ Effect.t +=
    | EDelay : float -> unit Effect.t
    | ESend : pid * int * string * M.msg -> unit Effect.t
    | ERecv : M.msg Effect.t
    | ETryRecv : M.msg option Effect.t
    | ESelf : pid Effect.t
    | ETime : float Effect.t
    | EMark : string -> unit Effect.t

  type proc = {
    p_id : pid;
    p_name : string;
    mailbox : M.msg Queue.t;
    mutable blocked : (M.msg, unit) Effect.Deep.continuation option;
    mutable idle_since : float;
    mutable finished : bool;
  }

  type t = {
    mutable now : float;
    events : (unit -> unit) Pqueue.t;
    procs : (pid, proc) Hashtbl.t;
    mutable next_pid : int;
    net : Ethernet.t;
    tr : Trace.t;
  }

  exception Deadlock of string

  let create ?(params = Ethernet.default_params) () =
    {
      now = 0.0;
      events = Pqueue.create ();
      procs = Hashtbl.create 16;
      next_pid = 0;
      net = Ethernet.create params;
      tr = Trace.create ();
    }

  let now t = t.now

  let network t = t.net

  let trace t = t.tr

  let proc t pid =
    match Hashtbl.find_opt t.procs pid with
    | Some p -> p
    | None -> invalid_arg (Printf.sprintf "Sim: unknown pid %d" pid)

  let name_of t pid = (proc t pid).p_name

  let process_count t = Hashtbl.length t.procs

  (* Deliver a message: wake the receiver if it is blocked, else enqueue. *)
  let deliver t ~src ~dst ~send_t ~label m =
    Trace.add_arrow t.tr ~src ~dst ~send:send_t ~recv:t.now ~label;
    let p = proc t dst in
    match p.blocked with
    | Some k ->
        p.blocked <- None;
        Trace.add_segment t.tr ~pid:p.p_id ~t0:p.idle_since ~t1:t.now Trace.Idle;
        Effect.Deep.continue k m
    | None -> Queue.add m p.mailbox

  let start_fiber t p body =
    let open Effect.Deep in
    match_with body ()
      {
        retc = (fun () -> p.finished <- true);
        exnc = (fun e -> raise e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | EDelay d ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    Trace.add_segment t.tr ~pid:p.p_id ~t0:t.now
                      ~t1:(t.now +. d) Trace.Active;
                    Pqueue.add t.events (t.now +. d) (fun () -> continue k ()))
            | ESend (dst, size, label, m) ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    let send_t = t.now in
                    let arrival = Ethernet.transmit t.net ~now:t.now ~size in
                    Pqueue.add t.events arrival (fun () ->
                        deliver t ~src:p.p_id ~dst ~send_t ~label m);
                    let cost = Ethernet.sender_cost t.net ~size in
                    Trace.add_segment t.tr ~pid:p.p_id ~t0:t.now
                      ~t1:(t.now +. cost) Trace.Active;
                    Pqueue.add t.events (t.now +. cost) (fun () ->
                        continue k ()))
            | ERecv ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    match Queue.take_opt p.mailbox with
                    | Some m -> continue k m
                    | None ->
                        p.blocked <- Some k;
                        p.idle_since <- t.now)
            | ETryRecv ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    continue k (Queue.take_opt p.mailbox))
            | ESelf -> Some (fun (k : (a, unit) continuation) -> continue k p.p_id)
            | ETime -> Some (fun (k : (a, unit) continuation) -> continue k t.now)
            | EMark label ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    Trace.add_mark t.tr ~pid:p.p_id ~time:t.now ~label;
                    continue k ())
            | _ -> None);
      }

  let spawn t ~name body =
    let pid = t.next_pid in
    t.next_pid <- t.next_pid + 1;
    let p =
      {
        p_id = pid;
        p_name = name;
        mailbox = Queue.create ();
        blocked = None;
        idle_since = 0.0;
        finished = false;
      }
    in
    Hashtbl.add t.procs pid p;
    Pqueue.add t.events t.now (fun () -> start_fiber t p body);
    pid

  let run t =
    let rec loop () =
      match Pqueue.pop_min t.events with
      | None -> ()
      | Some (time, f) ->
          t.now <- max t.now time;
          f ();
          loop ()
    in
    loop ();
    let stuck =
      Hashtbl.fold
        (fun _ p acc ->
          if (not p.finished) && p.blocked <> None then p.p_name :: acc
          else acc)
        t.procs []
    in
    if stuck <> [] then
      raise
        (Deadlock
           (Printf.sprintf "processes blocked in recv at end of simulation: %s"
              (String.concat ", " (List.sort compare stuck))))

  (* Effects *)

  let delay d = Effect.perform (EDelay d)

  let send ~dst ~size ?(label = "") m = Effect.perform (ESend (dst, size, label, m))

  let recv () = Effect.perform ERecv

  let try_recv () = Effect.perform ETryRecv

  let self () = Effect.perform ESelf

  let time () = Effect.perform ETime

  let mark label = Effect.perform (EMark label)
end
