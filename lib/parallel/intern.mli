(** Cross-machine intern librarian: transparent payload deduplication.

    Generalizes the paper's string librarian from code fragments to every
    large payload crossing machine boundaries. The wrapper sits above the
    transport (and above {!Reliable} when fault injection is active): the
    first time a machine sends a given attribute value or code-fragment text
    to a peer it travels as an [*_bind] message carrying the payload plus a
    sender-scoped intern id; every later transmission of an equal payload to
    the same peer is an [*_ref] of [2 * Message.iid_bytes] instead of the
    flattened bytes. "Equal" is decided by hash-consing ({!Pag_core.Value.intern}):
    the per-peer table is identity-keyed on canonical representatives, so
    lookup is O(1) with no structural comparison on the send path.

    Receivers translate binds and references back into the plain {!Message.Attr}
    / {!Message.Code_frag} messages, so process code is oblivious to the
    scheme. A reference arriving before its binding (reordered delivery under
    fault injection) is stashed while a {!Message.Need_intern} /
    {!Message.Backfill} round-trip fetches the payload — delivery order of
    *other* messages is preserved only as well as the underlying transport
    preserves it, which matches the existing contract. *)

open Pag_obs

type stats = {
  mutable is_binds : int;  (** payloads sent in full, establishing a binding *)
  mutable is_refs : int;  (** payloads replaced by an intern reference *)
  mutable is_needs : int;  (** cache misses that requested a backfill *)
  mutable is_backfills : int;  (** backfills served to peers *)
  mutable is_saved_bytes : int;  (** wire bytes saved by references *)
}

type t

(** [wrap ?obs ?threshold base] layers interning over [base]. Payloads
    smaller than [threshold] bytes (default 32) are not worth a table slot
    and travel plain. *)
val wrap : ?obs:Obs.ctx -> ?threshold:int -> Transport.env -> t

val stats : t -> stats

(** The wrapped environment; same shape as [base], delivering only plain
    messages. *)
val env : t -> Transport.env
