lib/pascal/expr_rules.ml: Ag_dsl Array Ast Cg Grammar List Pag_core Printf Pvalue Value Vax
