open Pag_util

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of Rope.t
  | List of t list
  | Pair of t * t
  | Tab of t Symtab.t
  | Ext of ext

and ext = ..

type ext_ops = {
  ext_name : string;
  ext_equal : ext -> ext -> bool option;
  ext_hash : ext -> int option;
  ext_size : ext -> int option;
  ext_pp : Format.formatter -> ext -> bool;
}

exception Type_error of string

let ext_registry : ext_ops list ref = ref []

let register_ext ops = ext_registry := ops :: !ext_registry

let ext_equal a b =
  let rec try_ops = function
    | [] -> raise (Type_error "Value.equal: unregistered Ext payload")
    | ops :: rest -> (
        match ops.ext_equal a b with Some r -> r | None -> try_ops rest)
  in
  try_ops !ext_registry

let ext_size e =
  let rec try_ops = function
    | [] -> 8
    | ops :: rest -> (
        match ops.ext_size e with Some n -> n | None -> try_ops rest)
  in
  try_ops !ext_registry

let ext_hash e =
  let rec try_ops = function
    | [] -> 0x7ead
    | ops :: rest -> (
        match ops.ext_hash e with Some h -> h | None -> try_ops rest)
  in
  try_ops !ext_registry

let rec equal a b =
  a == b
  ||
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Str x, Str y -> Rope.equal x y
  | List x, List y -> List.length x = List.length y && List.for_all2 equal x y
  | Pair (x1, x2), Pair (y1, y2) -> equal x1 y1 && equal x2 y2
  | Tab x, Tab y -> Symtab.equal equal x y
  | Ext x, Ext y -> ext_equal x y
  | (Unit | Bool _ | Int _ | Str _ | List _ | Pair _ | Tab _ | Ext _), _ ->
      false

let rec byte_size = function
  | Unit -> 1
  | Bool _ -> 1
  | Int _ -> 4
  | Str r -> Rope.length r
  | List l -> List.fold_left (fun n v -> n + byte_size v) 4 l
  | Pair (a, b) -> byte_size a + byte_size b
  | Tab tab ->
      (* st_put: each binding flattens to name + value + framing *)
      Symtab.fold
        (fun name v n -> n + String.length name + byte_size v + 4)
        tab 4
  | Ext e -> ext_size e

let rec pp fmt = function
  | Unit -> Format.pp_print_string fmt "()"
  | Bool b -> Format.pp_print_bool fmt b
  | Int i -> Format.pp_print_int fmt i
  | Str r ->
      let s = Rope.to_string r in
      if String.length s <= 40 then Format.fprintf fmt "%S" s
      else Format.fprintf fmt "<str:%d bytes>" (String.length s)
  | List l ->
      Format.fprintf fmt "[@[%a@]]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ")
           pp)
        l
  | Pair (a, b) -> Format.fprintf fmt "(%a, %a)" pp a pp b
  | Tab tab -> Format.fprintf fmt "<symtab:%d>" (Symtab.cardinal tab)
  | Ext e ->
      let rec try_ops = function
        | [] -> Format.pp_print_string fmt "<ext>"
        | ops :: rest -> if ops.ext_pp fmt e then () else try_ops rest
      in
      try_ops !ext_registry

let to_string v = Format.asprintf "%a" pp v

let type_name = function
  | Unit -> "unit"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Str _ -> "string"
  | List _ -> "list"
  | Pair _ -> "pair"
  | Tab _ -> "symtab"
  | Ext _ -> "ext"

let mismatch ctx expected v =
  raise
    (Type_error
       (Printf.sprintf "%s: expected %s, got %s" ctx expected (type_name v)))

let as_int ~ctx = function Int i -> i | v -> mismatch ctx "int" v

let as_bool ~ctx = function Bool b -> b | v -> mismatch ctx "bool" v

let as_str ~ctx = function Str r -> r | v -> mismatch ctx "string" v

let as_list ~ctx = function List l -> l | v -> mismatch ctx "list" v

let as_pair ~ctx = function Pair (a, b) -> (a, b) | v -> mismatch ctx "pair" v

let as_tab ~ctx = function Tab t -> t | v -> mismatch ctx "symtab" v

let str s = Str (Rope.of_string s)

let of_rope r = Str r

(* ------------------------------------------------------------------ *)
(* Hash-consing                                                        *)
(* ------------------------------------------------------------------ *)

(* Values are interned bottom-up into a process-wide weak arena: children
   are canonicalized first, so the arena's equality compares them with
   [==]. The arena equality is deliberately FINER than {!equal} — ropes by
   interned identity (shape-preserving), symbol tables by interned node
   identity (shape-preserving), [Ext] payloads by [ext_equal] — which is
   sound for an optimization: it never merges values that {!equal}
   distinguishes, it merely declines to merge some that {!equal} would.
   Correspondingly {!hash} is consistent with interning, not with
   {!equal}. *)

module Phys = Hashtbl.Make (struct
  type nonrec t = t

  let equal = ( == )

  (* Bounded-prefix polymorphic hash; physically equal values hash
     equally — all an identity-keyed cache needs. *)
  let hash = Hashtbl.hash
end)

let mix h1 h2 = (h1 * 0x01000193) lxor (h2 + 0x9e3779b9 + (h1 lsl 6))

(* Structural hashes of canonical values, memoized by identity. *)
let hash_memo : int Phys.t = Phys.create 1024

(* Identity cache of already-interned values. Direct-mapped (not a
   hashtable): an evaluation produces many physically distinct copies of
   equal values, which hash alike under the content-based [Hashtbl.hash]
   and would chain in one bucket of an identity-keyed table; here they
   evict each other, and the fixed size doubles as the garbage-pinning
   cap. *)
let canon_memo : (t, t) Phys_cache.t = Phys_cache.create 16

let remember v c = Phys_cache.replace canon_memo v c

let rec value_interner =
  lazy
    (Symtab.interner ~value_hash:compute_hash ~value_identical:( == ) "symtab")

and arena = lazy (Hcons.create ~hash:compute_hash ~equal:shallow_equal "value")

(* Memo first; else a shallow mix over (already canonical) children. *)
and compute_hash v =
  match Phys.find_opt hash_memo v with
  | Some h -> h
  | None -> (
      match v with
      | Unit -> 0x11
      | Bool false -> 0x22
      | Bool true -> 0x23
      | Int i -> mix 0x44 i
      | Str r -> mix 0x33 (Rope.hash r)
      | List l -> List.fold_left (fun acc x -> mix acc (compute_hash x)) 0x55 l
      | Pair (a, b) -> mix 0x99 (mix (compute_hash a) (compute_hash b))
      | Tab t ->
          mix 0x66
            (Symtab.hash (Lazy.force value_interner) ~intern_value:intern t)
      | Ext e -> mix 0x77 (ext_hash e))

and shallow_equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Str x, Str y -> x == y
  | List x, List y -> List.compare_lengths x y = 0 && List.for_all2 ( == ) x y
  | Pair (x1, x2), Pair (y1, y2) -> x1 == y1 && x2 == y2
  | Tab x, Tab y -> x == y
  | Ext x, Ext y -> ( try ext_equal x y with Type_error _ -> x == y)
  | (Unit | Bool _ | Int _ | Str _ | List _ | Pair _ | Tab _ | Ext _), _ ->
      false

(* Canonical values are exactly the keys of [hash_memo]; the O(1)
   membership test keeps re-interning of canonical values (and of values
   whose children are canonical) from re-walking shared substructure —
   hash-consed evaluation builds DAG-shaped values, and recursing into
   them as trees is exponential in the sharing depth. *)
and intern v =
  if Phys.mem hash_memo v then v
  else
    match Phys_cache.find_opt canon_memo v with
    | Some c -> c
    | None ->
      let cand =
        match v with
        | Unit | Bool _ | Int _ | Ext _ -> v
        | Str r ->
            let r' = Rope.intern r in
            if r' == r then v else Str r'
        | List l ->
            let l' = List.map intern l in
            if List.for_all2 ( == ) l l' then v else List l'
        | Pair (a, b) ->
            let a' = intern a and b' = intern b in
            if a' == a && b' == b then v else Pair (a', b')
        | Tab t ->
            let t' =
              Symtab.intern (Lazy.force value_interner) ~intern_value:intern t
            in
            if t' == t then v else Tab t'
      in
      let canon = Hcons.intern (Lazy.force arena) cand in
      if not (Phys.mem hash_memo canon) then
        Phys.replace hash_memo canon (compute_hash canon);
      remember v canon;
      canon

let hash v = compute_hash (intern v)

let backref_bytes = 8

(* DAG-encoded wire size, the counterpart of {!byte_size} for transfers
   between two arena-aware peers: distinct canonical subvalues are counted
   once (at their [byte_size] framing), repeats cost a fixed backreference
   when that is cheaper. A sharing-free value costs exactly [byte_size]. *)
let dag_byte_size v =
  let seen : unit Phys.t = Phys.create 64 in
  let rec go v =
    if Phys.mem seen v then backref_bytes
    else
      let s =
        match v with
        | Unit | Bool _ -> 1
        | Int _ -> 4
        | Str r -> Rope.dag_size r
        | List l -> List.fold_left (fun n x -> n + go x) 4 l
        | Pair (a, b) -> go a + go b
        | Tab tab ->
            Symtab.fold
              (fun name x n -> n + String.length name + go x + 4)
              tab 4
        | Ext e -> ext_size e
      in
      if s > backref_bytes then Phys.replace seen v ();
      s
  in
  go (intern v)
