test/test_encode.ml: Alcotest Asm_parser Bytes Encode Isa Pascal Printf QCheck QCheck_alcotest String Vax
