lib/parallel/librarian.ml: Codestr Format Hashtbl Message Pag_core Pag_util Rope Transport
