let () =
  Alcotest.run "pag"
    (Test_rope.suite @ Test_symtab.suite @ Test_digraph.suite
   @ Test_pqueue.suite @ Test_value.suite @ Test_grammar.suite
   @ Test_tree.suite @ Test_kastens.suite @ Test_eval.suite @ Test_netsim.suite @ Test_split.suite @ Test_parallel.suite @ Test_vax.suite @ Test_pascal.suite @ Test_pascal_parallel.suite @ Test_lrgen.suite @ Test_agspec.suite @ Test_codestr.suite @ Test_uid.suite @ Test_encode.suite @ Test_pascal_edge.suite @ Test_protocol.suite @ Test_random_ag.suite
   @ Test_store.suite @ Test_faults.suite @ Test_obs.suite
   @ Test_hashcons.suite @ Test_incr.suite @ Test_session.suite
   @ Test_steal.suite @ Test_service.suite @ Test_causal.suite
   @ Test_dag.suite)
