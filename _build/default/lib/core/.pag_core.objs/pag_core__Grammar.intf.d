lib/core/grammar.mli: Format Value
