(** The string librarian process (paper, section 4.3).

    Evaluators ship their final code text here exactly once; descriptors
    travel up the evaluator tree instead. When the coordinator forwards the
    root descriptor, the librarian splices the stored fragments back together
    and returns the complete code. This turns result propagation from a
    sequential chain of ever-growing retransmissions into one parallel burst
    of single transmissions. *)

(** [run env ~coordinator] serves {!Message.Code_frag} and
    {!Message.Resolve} until the final code has been assembled and sent back
    as {!Message.Final}. The resolve request may arrive before all fragments
    have; the librarian keeps collecting until every referenced fragment is
    present. Duplicated [Code_frag] messages replace an identical binding
    and duplicated [Resolve] requests after the answer was sent are ignored,
    so the code is assembled and transmitted exactly once even over a faulty
    network. With a live [obs] context, the final assembly is recorded as an
    instant event and the [librarian.bytes] / [librarian.fragments] gauges
    capture the deduplicated text volume the librarian absorbed. *)
val run : ?obs:Pag_obs.Obs.ctx -> Transport.env -> coordinator:int -> unit
