(* Abstract syntax of attribute-grammar specifications — the input language
   of the paper's evaluator generator (appendix). The concrete syntax is a
   YACC-flavoured reconstruction of the appendix's:

     %name IDENTIFIER ident string      -- terminal + lexical class + attr
     %name NUMBER number value
     %keyword LET "let"  IN "in"  NI "ni"  PLUS "+"  TIMES "*"
     %nosplit expr : syn value, inh priority stab
     %split 64 block : syn value, inh priority stab
     %start main_expr
     %left PLUS
     %left TIMES
     %%
     main_expr -> expr {
       $$.value = $1.value;
       $1.stab = st_create();
     }
     expr -> expr PLUS expr {
       $$.value = add($1.value, $3.value);
       $1.stab = $$.stab;
       $3.stab = $$.stab;
     }

   Semantic rules are written `$k.attr = expression` where `$$` is the left
   side and `$k` the k-th right-side symbol; expressions are literals,
   attribute references and applications of library functions (st_create,
   st_add, st_lookup, add, mul, ... — see Primitives). *)

type lex_class = Ident | Number

type name_spec = { n_term : string; n_class : lex_class; n_attr : string }

type kw_spec = { k_term : string; k_text : string }

type attr_spec = {
  a_name : string;
  a_inherited : bool;
  a_priority : bool;
}

type nt_spec = {
  nt_name : string;
  nt_split : int option; (* minimum subtree bytes, None = %nosplit *)
  nt_attrs : attr_spec list;
}

type sexpr =
  | SAttr of int * string (* position (0 = $$), attribute *)
  | SInt of int
  | SStr of string
  | SCall of string * sexpr list

type rule_spec = { r_pos : int; r_attr : string; r_expr : sexpr }

type prod_spec = { p_lhs : string; p_rhs : string list; p_rules : rule_spec list }

type assoc = Left | Right | Nonassoc

type t = {
  s_names : name_spec list;
  s_keywords : kw_spec list;
  s_nts : nt_spec list;
  s_start : string;
  s_prec : (assoc * string list) list; (* low to high *)
  s_prods : prod_spec list;
}
