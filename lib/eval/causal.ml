open Pag_core
open Pag_obs

(* Post-run provenance analysis: materialize the firing records of one or
   more {!Prov} rings into a causal DAG over attribute instances, then
   answer the two questions the profiler ships — "why does this attribute
   have this value" (dependency slice) and "why did the run take this
   long" (weighted critical path with rule/machine blame).

   Attribute instances are keyed globally as [node_id * stride + attr_idx]:
   node preorder ids are global across all fragment stores of a parallel
   run ({!Store.create_shared} keeps them), so records from different
   machines link up even though their slot ids are store-local. *)

let stride = 1024

let key_of node ~attr_idx = (node.Tree.id * stride) + attr_idx

(* Per-record argument capacity a ring needs so no slot argument of any of
   [g]'s rules is ever dropped: the widest dependency list (terminal deps
   are never recorded as slot args, so this over-provisions slightly).
   Floor of 8 keeps tiny grammars at the ring's default layout. *)
let arity_for g =
  Array.fold_left
    (fun m p ->
      Array.fold_left
        (fun m r -> max m (List.length r.Grammar.r_deps))
        m p.Grammar.p_rules)
    8 (Grammar.productions g)

(* One firing, with slots translated to global keys. [x_src] indexes the
   source list so values can be read back from the recording store. *)
type fir = {
  x_src : int;
  x_rid : int;
  x_pid : int;
  x_t0 : float;
  x_t1 : float;
  x_replay : bool;
  x_tslot : int;
  x_tkey : int;
  x_aslots : int array;
  x_akeys : int array;
  mutable x_preds : int array;  (** firing index per argument, -1 external *)
}

type t = {
  d_srcs : Engine.t array;
  d_fir : fir array;
  d_last : (int, int) Hashtbl.t;  (** key -> final defining firing *)
  d_dropped : int;
  d_arg_drops : int;
}

let firings d = Array.length d.d_fir

let dropped d = d.d_dropped

let arg_drops d = d.d_arg_drops

let has_key d k = Hashtbl.mem d.d_last k

let build srcs =
  let srcs_a = Array.of_list srcs in
  let engs = Array.map snd srcs_a in
  let acc = ref [] and count = ref 0 and drops = ref 0 and adrops = ref 0 in
  Array.iteri
    (fun si (p, eng) ->
      drops := !drops + Prov.dropped p;
      adrops := !adrops + Prov.arg_drops p;
      let st = Engine.store eng in
      let key_of_slot s =
        let n, ai = Store.slot_owner st s in
        key_of n ~attr_idx:ai
      in
      Prov.iter p (fun f ->
          let x =
            {
              x_src = si;
              x_rid = f.Prov.f_rid;
              x_pid = f.Prov.f_pid;
              x_t0 = f.Prov.f_t0;
              x_t1 = (if f.Prov.f_t1 >= f.Prov.f_t0 then f.Prov.f_t1
                      else f.Prov.f_t0);
              x_replay = f.Prov.f_replay;
              x_tslot = f.Prov.f_target;
              x_tkey = key_of_slot f.Prov.f_target;
              x_aslots = f.Prov.f_args;
              x_akeys = Array.map key_of_slot f.Prov.f_args;
              x_preds = [||];
            }
          in
          acc := x :: !acc;
          incr count))
    srcs_a;
  let fir =
    match !acc with
    | [] -> [||]
    | hd :: _ ->
        let a = Array.make !count hd in
        List.iteri (fun i x -> a.(!count - 1 - i) <- x) !acc;
        a
  in
  (* Chronological order: stable sort by t0, ties broken by the per-source
     record order the concatenation preserved. *)
  let idx = Array.init !count (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = compare fir.(a).x_t0 fir.(b).x_t0 in
      if c <> 0 then c else compare a b)
    idx;
  let fir = Array.map (fun i -> fir.(i)) idx in
  (* Defining firings per key. Refires redefine: the last index wins. *)
  let last = Hashtbl.create (max 16 !count) in
  Array.iteri (fun j x -> Hashtbl.replace last x.x_tkey j) fir;
  (* Predecessors: the chronologically latest earlier definition of each
     argument. When machine clocks tie coarsely (wall time on domains), a
     cross-machine definition can sort after its use — fall back to the
     key's (unique, in a from-scratch run) definition wherever it sorted;
     causality guarantees the fallback cannot create a real cycle, and the
     DAG walks below tolerate a fabricated one. *)
  let seen = Hashtbl.create (max 16 !count) in
  Array.iteri
    (fun j x ->
      x.x_preds <-
        Array.map
          (fun k ->
            match Hashtbl.find_opt seen k with
            | Some i -> i
            | None -> (
                match Hashtbl.find_opt last k with
                | Some i when i <> j -> i
                | _ -> -1))
          x.x_akeys;
      Hashtbl.replace seen x.x_tkey j)
    fir;
  {
    d_srcs = engs;
    d_fir = fir;
    d_last = last;
    d_dropped = !drops;
    d_arg_drops = !adrops;
  }

(* {1 Naming} *)

let instance_name g node attr_idx =
  let sym = Grammar.symbol_of_id g node.Tree.sym_id in
  Printf.sprintf "%s#%d.%s" sym.Grammar.s_name node.Tree.id
    sym.Grammar.s_attrs.(attr_idx).Grammar.a_name

let key_name st key =
  let g = Store.grammar st in
  match Store.find_node st (key / stride) with
  | Some n -> instance_name g n (key mod stride)
  | None -> Printf.sprintf "#%d.attr%d" (key / stride) (key mod stride)

let rule_label eng rid =
  let r = Engine.rule_of eng rid in
  match (Engine.node_of eng rid).Tree.prod with
  | Some p -> p.Grammar.p_name ^ ":" ^ r.Grammar.r_name
  | None -> r.Grammar.r_name

let fir_target_name d x = key_name (Engine.store d.d_srcs.(x.x_src)) x.x_tkey

let fir_label d x = rule_label d.d_srcs.(x.x_src) x.x_rid

(* {1 Dependency slice} *)

let slice d key =
  match Hashtbl.find_opt d.d_last key with
  | None -> []
  | Some start ->
      let n = Array.length d.d_fir in
      let mark = Bytes.make n '\000' in
      let out = ref [] in
      let stack = ref [ start ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | j :: rest ->
            stack := rest;
            if Bytes.get mark j = '\000' then begin
              Bytes.set mark j '\001';
              out := j :: !out;
              Array.iter
                (fun p -> if p >= 0 && Bytes.get mark p = '\000' then
                    stack := p :: !stack)
                d.d_fir.(j).x_preds
            end
      done;
      List.sort compare !out

let slice_keys d key =
  slice d key
  |> List.map (fun j -> d.d_fir.(j).x_tkey)
  |> List.sort_uniq compare

let value_str st slot =
  if Store.slot_is_set st slot then Value.to_string (Store.peek st slot)
  else "<unset>"

let render_slice d key =
  let b = Buffer.create 1024 in
  let js = slice d key in
  (match js with
  | [] ->
      Buffer.add_string b
        (Printf.sprintf "no recorded firing defines key %d (intrinsic, \
                         preset, or evicted from the ring)\n" key)
  | _ ->
      Buffer.add_string b
        (Printf.sprintf "dependency slice: %d firing(s)\n" (List.length js));
      List.iter
        (fun j ->
          let x = d.d_fir.(j) in
          let st = Engine.store d.d_srcs.(x.x_src) in
          Buffer.add_string b
            (Printf.sprintf "  [m%d] %s%9.6f..%9.6f  %-28s  %s = %s" x.x_pid
               (if x.x_replay then "~" else " ")
               x.x_t0 x.x_t1 (fir_label d x) (fir_target_name d x)
               (value_str st x.x_tslot));
          if Array.length x.x_aslots > 0 then begin
            Buffer.add_string b "\n        <- ";
            Array.iteri
              (fun i s ->
                if i > 0 then Buffer.add_string b ", ";
                Buffer.add_string b
                  (Printf.sprintf "%s = %s" (key_name st x.x_akeys.(i))
                     (value_str st s)))
              x.x_aslots
          end;
          Buffer.add_char b '\n')
        js);
  if d.d_dropped > 0 then
    Buffer.add_string b
      (Printf.sprintf "  (ring dropped %d older records; slice may be \
                       incomplete)\n" d.d_dropped);
  Buffer.contents b

(* {1 Verification against the engine's dependency graph} *)

let closure_keys eng gr key =
  let st = Engine.store eng in
  match Store.find_node st (key / stride) with
  | None -> []
  | Some node ->
      let start = Store.slot_of st node ~attr_idx:(key mod stride) in
      let seen = Hashtbl.create 64 in
      let keys = ref [] in
      let stack = ref [ start ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | s :: rest ->
            stack := rest;
            if not (Hashtbl.mem seen s) then begin
              Hashtbl.add seen s ();
              let rid = Engine.producer gr s in
              if rid >= 0 && not (Engine.is_dead eng rid) then begin
                let n, ai = Store.slot_owner st s in
                keys := key_of n ~attr_idx:ai :: !keys;
                Engine.iter_slot_args eng rid (fun a ->
                    if not (Hashtbl.mem seen a) then stack := a :: !stack)
              end
            end
      done;
      List.sort_uniq compare !keys

let verify_slice d ~ref_engine ~ref_graph key =
  let got = slice_keys d key in
  let want = closure_keys ref_engine ref_graph key in
  let st = Engine.store ref_engine in
  let diff a b = List.filter (fun k -> not (List.mem k b)) a in
  ( List.map (key_name st) (diff want got),
    List.map (key_name st) (diff got want) )

(* {1 Critical path} *)

type step = {
  st_label : string;
  st_target : string;
  st_pid : int;
  st_t0 : float;
  st_t1 : float;
  st_replay : bool;
}

type chain = { ch_len : float; ch_steps : step list }

type profile = {
  pr_firings : int;
  pr_replays : int;
  pr_dropped : int;
  pr_machines : int;
  pr_makespan : float;
  pr_work : float;
  pr_critical : float;
  pr_ideal : float;
  pr_rule_blame : (string * int * float) list;
  pr_machine_blame : (int * int * float) list;
  pr_chains : chain list;
}

let dur x = x.x_t1 -. x.x_t0

(* Topological postorder over predecessor edges (iterative: chains reach
   tree depth x rule count). The rare fabricated cycle from coarse-clock
   fallback edges is broken by the on-stack mark. *)
let toposort fir =
  let n = Array.length fir in
  let mark = Bytes.make n '\000' in
  (* '\000' unvisited, '\001' on stack, '\002' done *)
  let order = Array.make n 0 in
  let pos = ref 0 in
  for root = 0 to n - 1 do
    if Bytes.get mark root = '\000' then begin
      let stack = ref [ (root, 0) ] in
      Bytes.set mark root '\001';
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (j, pi) :: rest ->
            let preds = fir.(j).x_preds in
            if pi >= Array.length preds then begin
              stack := rest;
              Bytes.set mark j '\002';
              order.(!pos) <- j;
              incr pos
            end
            else begin
              stack := (j, pi + 1) :: rest;
              let p = preds.(pi) in
              if p >= 0 && Bytes.get mark p = '\000' then begin
                Bytes.set mark p '\001';
                stack := (p, 0) :: !stack
              end
            end
      done
    end
  done;
  order

(* Longest weighted chain ending at each firing; [via] reconstructs it. *)
let critical fir =
  let n = Array.length fir in
  let cp = Array.make n 0.0 and via = Array.make n (-1) in
  let order = toposort fir in
  Array.iter
    (fun j ->
      let best = ref 0.0 and bi = ref (-1) in
      Array.iter
        (fun p ->
          if p >= 0 && cp.(p) > !best then begin
            best := cp.(p);
            bi := p
          end)
        fir.(j).x_preds;
      cp.(j) <- dur fir.(j) +. !best;
      via.(j) <- !bi)
    order;
  (cp, via)

let chain_of via endpoint =
  let rec walk j acc = if j < 0 then acc else walk via.(j) (j :: acc) in
  walk endpoint []

let step_of d j =
  let x = d.d_fir.(j) in
  {
    st_label = fir_label d x;
    st_target = fir_target_name d x;
    st_pid = x.x_pid;
    st_t0 = x.x_t0;
    st_t1 = x.x_t1;
    st_replay = x.x_replay;
  }

(* Top-K chains with disjoint firings, greediest endpoint first. *)
let top_chains fir cp via k =
  let n = Array.length fir in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare cp.(b) cp.(a)) idx;
  let used = Bytes.make n '\000' in
  let out = ref [] and taken = ref 0 in
  Array.iter
    (fun e ->
      if !taken < k && Bytes.get used e = '\000' then begin
        let ch = chain_of via e in
        if List.for_all (fun j -> Bytes.get used j = '\000') ch then begin
          List.iter (fun j -> Bytes.set used j '\001') ch;
          out := (cp.(e), ch) :: !out;
          incr taken
        end
      end)
    idx;
  List.rev !out

let profile ?(top = 3) d =
  let fir = d.d_fir in
  let n = Array.length fir in
  if n = 0 then
    {
      pr_firings = 0;
      pr_replays = 0;
      pr_dropped = d.d_dropped;
      pr_machines = 0;
      pr_makespan = 0.0;
      pr_work = 0.0;
      pr_critical = 0.0;
      pr_ideal = 0.0;
      pr_rule_blame = [];
      pr_machine_blame = [];
      pr_chains = [];
    }
  else begin
    let t_lo = ref infinity and t_hi = ref neg_infinity in
    let work = ref 0.0 and replays = ref 0 in
    let pids = Hashtbl.create 8 in
    Array.iter
      (fun x ->
        if x.x_t0 < !t_lo then t_lo := x.x_t0;
        if x.x_t1 > !t_hi then t_hi := x.x_t1;
        work := !work +. dur x;
        if x.x_replay then incr replays;
        Hashtbl.replace pids x.x_pid ())
      fir;
    let machines = Hashtbl.length pids in
    let cp, via = critical fir in
    let chains = top_chains fir cp via (max 1 top) in
    let critical_len =
      match chains with [] -> 0.0 | (l, _) :: _ -> l
    in
    (* Blame the top chain: where did critical-path time go, by rule and
       by machine. *)
    let rtab = Hashtbl.create 32 and mtab = Hashtbl.create 8 in
    (match chains with
    | [] -> ()
    | (_, ch) :: _ ->
        List.iter
          (fun j ->
            let x = fir.(j) in
            let lbl = fir_label d x in
            let c, t =
              Option.value (Hashtbl.find_opt rtab lbl) ~default:(0, 0.0)
            in
            Hashtbl.replace rtab lbl (c + 1, t +. dur x);
            let c, t =
              Option.value (Hashtbl.find_opt mtab x.x_pid) ~default:(0, 0.0)
            in
            Hashtbl.replace mtab x.x_pid (c + 1, t +. dur x))
          ch);
    let rule_blame =
      Hashtbl.fold (fun l (c, t) acc -> (l, c, t) :: acc) rtab []
      |> List.sort (fun (l1, _, t1) (l2, _, t2) ->
             let c = compare t2 t1 in
             if c <> 0 then c else compare l1 l2)
    in
    let machine_blame =
      Hashtbl.fold (fun p (c, t) acc -> (p, c, t) :: acc) mtab []
      |> List.sort (fun (p1, _, t1) (p2, _, t2) ->
             let c = compare t2 t1 in
             if c <> 0 then c else compare p1 p2)
    in
    let makespan = !t_hi -. !t_lo in
    {
      pr_firings = n;
      pr_replays = !replays;
      pr_dropped = d.d_dropped;
      pr_machines = machines;
      pr_makespan = makespan;
      pr_work = !work;
      pr_critical = critical_len;
      pr_ideal =
        max critical_len (!work /. float_of_int (max 1 machines));
      pr_rule_blame = rule_blame;
      pr_machine_blame = machine_blame;
      pr_chains =
        List.map
          (fun (l, ch) ->
            { ch_len = l; ch_steps = List.map (step_of d) ch })
          chains;
    }
  end

let render_profile p =
  let b = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "critical-path profile";
  line "  firings            %d%s" p.pr_firings
    (if p.pr_replays > 0 then Printf.sprintf " (%d replayed)" p.pr_replays
     else "");
  if p.pr_dropped > 0 then
    line "  dropped records    %d (ring overflow; figures are lower bounds)"
      p.pr_dropped;
  line "  machines           %d" p.pr_machines;
  line "  makespan           %.6f s" p.pr_makespan;
  line "  total work         %.6f s" p.pr_work;
  line "  critical path      %.6f s  (%.1f%% of makespan)" p.pr_critical
    (if p.pr_makespan > 0.0 then 100.0 *. p.pr_critical /. p.pr_makespan
     else 0.0);
  line "  ideal parallel     %.6f s  (max(critical, work/machines))"
    p.pr_ideal;
  if p.pr_rule_blame <> [] then begin
    line "  rule blame (top chain):";
    List.iter
      (fun (l, c, t) -> line "    %-38s %5d firings  %.6f s" l c t)
      p.pr_rule_blame
  end;
  if p.pr_machine_blame <> [] then begin
    line "  machine blame (top chain):";
    List.iter
      (fun (pid, c, t) -> line "    m%-37d %5d firings  %.6f s" pid c t)
      p.pr_machine_blame
  end;
  List.iteri
    (fun i ch ->
      line "  chain %d: %.6f s, %d steps" i ch.ch_len (List.length ch.ch_steps);
      let steps = ch.ch_steps in
      let shown =
        if List.length steps <= 12 then steps
        else
          let a = Array.of_list steps in
          Array.to_list (Array.sub a 0 6)
          @ [ List.nth steps (List.length steps / 2) ]
          @ Array.to_list (Array.sub a (Array.length a - 5) 5)
      in
      List.iter
        (fun s ->
          line "    [m%d] %9.6f..%9.6f  %-28s -> %s" s.st_pid s.st_t0 s.st_t1
            s.st_label s.st_target)
        shown;
      if List.length steps > List.length shown then
        line "    (… %d steps elided …)"
          (List.length steps - List.length shown))
    p.pr_chains;
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let profile_json p =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\"firings\":%d,\"replays\":%d,\"dropped\":%d,\"machines\":%d,"
    p.pr_firings p.pr_replays p.pr_dropped p.pr_machines;
  add "\"makespan_s\":%.9f,\"work_s\":%.9f,\"critical_s\":%.9f,"
    p.pr_makespan p.pr_work p.pr_critical;
  add "\"ideal_s\":%.9f,\"rule_blame\":[" p.pr_ideal;
  List.iteri
    (fun i (l, c, t) ->
      add "%s{\"rule\":\"%s\",\"firings\":%d,\"time_s\":%.9f}"
        (if i > 0 then "," else "")
        (json_escape l) c t)
    p.pr_rule_blame;
  add "],\"machine_blame\":[";
  List.iteri
    (fun i (pid, c, t) ->
      add "%s{\"machine\":%d,\"firings\":%d,\"time_s\":%.9f}"
        (if i > 0 then "," else "")
        pid c t)
    p.pr_machine_blame;
  add "],\"chains\":[";
  List.iteri
    (fun i ch ->
      add "%s{\"length_s\":%.9f,\"steps\":[" (if i > 0 then "," else "") ch.ch_len;
      List.iteri
        (fun k s ->
          add "%s{\"rule\":\"%s\",\"target\":\"%s\",\"machine\":%d,\
               \"t0\":%.9f,\"t1\":%.9f,\"replay\":%b}"
            (if k > 0 then "," else "")
            (json_escape s.st_label) (json_escape s.st_target) s.st_pid
            s.st_t0 s.st_t1 s.st_replay)
        ch.ch_steps;
      add "]}")
    p.pr_chains;
  add "]}";
  Buffer.contents b

(* {1 Trace flow arrows} *)

let flows ?(top = 3) d =
  let fir = d.d_fir in
  let rc = Obs.create () in
  if Array.length fir > 0 then begin
    let cp, via = critical fir in
    let chains = top_chains fir cp via (max 1 top) in
    List.iteri
      (fun ci (_, ch) ->
        let rec arrows = function
          | a :: (b :: _ as rest) ->
              let xa = fir.(a) and xb = fir.(b) in
              Obs.flow rc ~src:xa.x_pid ~dst:xb.x_pid ~send:xa.x_t1
                ~recv:(max xb.x_t0 xa.x_t1)
                (Printf.sprintf "cp%d" ci);
              arrows rest
          | _ -> ()
        in
        arrows ch)
      chains
  end;
  rc
