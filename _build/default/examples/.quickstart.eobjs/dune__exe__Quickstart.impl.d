examples/quickstart.ml: Dynamic Expr_ag Format Kastens List Oracle Pag_analysis Pag_core Pag_eval Pag_grammars Pag_parallel Printf Static_eval Store Value
