lib/parallel/runner.ml: Array Char Condition Coordinator Cost Domain Ethernet Hashtbl Librarian List Message Mutex Netsim Option Pag_core Printf Queue Sim Split Trace Transport Tree Unix Value Worker
