(** Exporters for recorded telemetry.

    {!chrome} emits the Chrome trace-event JSON format (open the file in
    Perfetto or chrome://tracing): one track per machine, spans as complete
    ["X"] events, discrete events as instants, message flows as ["s"]/["f"]
    flow-event pairs drawn as arrows. {!jsonl} dumps the raw event stream,
    one JSON object per line, for ad-hoc tooling. *)

(** [chrome ~names r] renders the whole recorder. Timestamps are converted
    to microseconds as the format requires. *)
val chrome : names:(int -> string) -> Obs.recorder -> string

val jsonl : names:(int -> string) -> Obs.recorder -> string
