lib/lrgen/cfg.mli:
