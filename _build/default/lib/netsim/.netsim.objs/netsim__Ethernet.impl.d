lib/netsim/ethernet.ml:
