lib/pascal/peephole.ml: List Vax
