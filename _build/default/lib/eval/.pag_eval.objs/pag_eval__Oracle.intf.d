lib/eval/oracle.mli: Grammar Pag_core Store Tree Value
