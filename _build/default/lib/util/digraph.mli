(** Directed graphs over nodes [0 .. n-1].

    The workhorse of attribute-grammar analysis and dynamic evaluation:
    dependency graphs are built once, then topologically sorted, closed
    transitively (Kastens' IDP/IDS fixpoint), or searched for cycles (to
    report circular grammars). Graphs are immutable once built; duplicate
    edges are coalesced. *)

type t

(** [make n edges] builds a graph with nodes [0..n-1]. Raises
    [Invalid_argument] if an endpoint is out of range. *)
val make : int -> (int * int) list -> t

val node_count : t -> int

val edge_count : t -> int

(** Successors of a node, each listed once, in increasing order. *)
val succs : t -> int -> int list

val preds : t -> int -> int list

val mem_edge : t -> int -> int -> bool

val edges : t -> (int * int) list

val add_edges : t -> (int * int) list -> t

(** Kahn's algorithm; [None] when the graph has a cycle. Among ready nodes,
    smaller indices come first, so the order is deterministic. *)
val topo_sort : t -> int list option

val has_cycle : t -> bool

(** Some cycle as a node list [v1; ...; vk] with edges v1->v2->...->vk->v1,
    when one exists. *)
val find_cycle : t -> int list option

(** Reflexive-free transitive closure. *)
val transitive_closure : t -> t

(** Strongly connected components in reverse topological order (Tarjan). *)
val sccs : t -> int list list

val pp : Format.formatter -> t -> unit
