(* Provenance ring: one record per rule firing.

   Struct-of-arrays like the event recorder, but bounded: the buffer is a
   memory-capped ring over [cap] records, each with room for [arity]
   argument slots. Recording into a full ring overwrites the oldest record
   and counts it in [dropped] — a long serve run keeps a sliding window of
   recent causality instead of growing without bound. [disabled] shares
   empty arrays and bails on the [on] flag, so the recording calls can live
   in {!Pag_eval.Engine}'s firing path permanently.

   Storage grows geometrically from a small seed up to [cap] (the event
   recorder's doubling regime): a short run never pays for the worst-case
   window — eagerly allocating the default 2^18-record ring costs tens of
   megabytes of zeroed arrays, which dwarfs the recording itself on a
   sub-second compile. [size] is the allocated record count; the ring
   only wraps once [size] has reached [cap], so while growing, record [i]
   lives at index [i] and doubling is a plain blit.

   Every column is a float array — including the integer-valued ones
   (ids, counters), which convert on access. Float arrays are the only
   stdlib storage that is both allocated uninitialized
   ([Array.create_float]; every cell is written before it is read) and
   skipped by the GC ([Double_array_tag] holds no pointers), so a
   megabytes-large ring costs neither zeroing at creation nor marking on
   every major collection — both of which showed up as whole percents of
   compile time when the columns were int arrays. Ids are far below the
   2^53 mantissa bound, so the conversions are exact. *)

type ints = float array

type floats = float array

let make_ints n : ints = Array.create_float n

let make_floats n : floats = Array.create_float n

type t = {
  on : bool;
  cap : int;  (* maximum record slots in the ring *)
  arity : int;  (* argument slots per record *)
  mutable size : int;  (* allocated record slots, <= cap *)
  mutable n : int;  (* records ever written (monotone) *)
  mutable head : int;  (* index of the most recent record; -1 when empty *)
  mutable arg_drops : int;  (* arguments past [arity], not stored *)
  mutable q_rid : ints;
  mutable q_pid : ints;
  mutable q_target : ints;
  mutable q_flags : ints;  (* bit 0: memo replay *)
  mutable q_t0 : floats;
  mutable q_t1 : floats;
  mutable q_argc : ints;
  mutable q_args : ints;  (* size * arity, record-major *)
}

type firing = {
  f_rid : int;
  f_pid : int;
  f_target : int;  (* target slot id in the recording engine's store *)
  f_t0 : float;
  f_t1 : float;
  f_replay : bool;
  f_args : int array;  (* argument slot ids (constants excluded) *)
}

let disabled =
  {
    on = false;
    cap = 1;
    arity = 0;
    size = 0;
    n = 0;
    head = -1;
    arg_drops = 0;
    q_rid = make_ints 0;
    q_pid = make_ints 0;
    q_target = make_ints 0;
    q_flags = make_ints 0;
    q_t0 = make_floats 0;
    q_t1 = make_floats 0;
    q_argc = make_ints 0;
    q_args = make_ints 0;
  }

let default_cap = 1 lsl 18

let initial_size = 1 lsl 10

(* [hint] pre-sizes storage for an expected record count (a scheduler
   that knows its firing total passes it): growth doubling costs one blit
   of every live record per step, which a good hint removes entirely. *)
let create ?(cap = default_cap) ?(arity = 8) ?hint () =
  let cap = max 1 cap and arity = max 1 arity in
  let size =
    match hint with
    | None -> min initial_size cap
    | Some h -> min (max initial_size h) cap
  in
  {
    on = true;
    cap;
    arity;
    size;
    n = 0;
    head = -1;
    arg_drops = 0;
    q_rid = make_ints size;
    q_pid = make_ints size;
    q_target = make_ints size;
    q_flags = make_ints size;
    q_t0 = make_floats size;
    q_t1 = make_floats size;
    q_argc = make_ints size;
    q_args = make_ints (size * arity);
  }

let enabled t = t.on

let total t = t.n

let length t = min t.n t.cap

let dropped t = max 0 (t.n - t.cap)

let arg_drops t = t.arg_drops

(* Double up to [cap]. Only reached with [n = size < cap], so all live
   records sit at indices [0 .. n-1] and move verbatim. *)
let grow t =
  let size' = min (2 * t.size) t.cap in
  let ints (a : ints) =
    let b = make_ints size' in
    Array.blit a 0 b 0 t.size;
    b
  in
  let floats (a : floats) =
    let b = make_floats size' in
    Array.blit a 0 b 0 t.size;
    b
  in
  let args =
    let b = make_ints (size' * t.arity) in
    Array.blit t.q_args 0 b 0 (t.size * t.arity);
    b
  in
  t.q_rid <- ints t.q_rid;
  t.q_pid <- ints t.q_pid;
  t.q_target <- ints t.q_target;
  t.q_flags <- ints t.q_flags;
  t.q_t0 <- floats t.q_t0;
  t.q_t1 <- floats t.q_t1;
  t.q_argc <- ints t.q_argc;
  t.q_args <- args;
  t.size <- size'

(* [head] tracks the write position so the hot path never divides:
   recording runs once per rule firing and integer [mod] alone costs more
   than the stores around it. *)
let record t ~rid ~pid ~target ~t0 ~t1 ~replay =
  if t.on then begin
    if t.n = t.size && t.size < t.cap then grow t;
    (* [n < size], or [size = cap] and the ring wraps *)
    let i = t.head + 1 in
    let i = if i >= t.size then 0 else i in
    t.q_rid.(i) <- float_of_int rid;
    t.q_pid.(i) <- float_of_int pid;
    t.q_target.(i) <- float_of_int target;
    t.q_flags.(i) <- (if replay then 1.0 else 0.0);
    t.q_t0.(i) <- t0;
    t.q_t1.(i) <- t1;
    t.q_argc.(i) <- 0.0;
    t.head <- i;
    t.n <- t.n + 1
  end

let arg t slot =
  if t.on && t.n > 0 then begin
    let i = t.head in
    let c = int_of_float t.q_argc.(i) in
    if c < t.arity then begin
      t.q_args.((i * t.arity) + c) <- float_of_int slot;
      t.q_argc.(i) <- float_of_int (c + 1)
    end
    else t.arg_drops <- t.arg_drops + 1
  end

let set_last_t1 t t1 = if t.on && t.n > 0 then t.q_t1.(t.head) <- t1

(* Surviving records are the last [length t] written; [j] counts from the
   oldest survivor. *)
let get t j =
  let first = max 0 (t.n - t.cap) in
  let i = (first + j) mod t.size in
  {
    f_rid = int_of_float t.q_rid.(i);
    f_pid = int_of_float t.q_pid.(i);
    f_target = int_of_float t.q_target.(i);
    f_t0 = t.q_t0.(i);
    f_t1 = t.q_t1.(i);
    f_replay = t.q_flags.(i) <> 0.0;
    f_args =
      Array.init
        (int_of_float t.q_argc.(i))
        (fun k -> int_of_float t.q_args.((i * t.arity) + k));
  }

let iter t f =
  for j = 0 to length t - 1 do
    f (get t j)
  done

let clear t =
  if t.on then begin
    t.n <- 0;
    t.head <- -1;
    t.arg_drops <- 0
  end
