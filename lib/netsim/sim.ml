open Pag_util

module Make (M : sig
  type msg
end) =
struct
  type pid = int

  type _ Effect.t +=
    | EDelay : float -> unit Effect.t
    | ESend : pid * int * string * M.msg -> unit Effect.t
    | ERecv : M.msg Effect.t
    | ERecvTimeout : float -> M.msg option Effect.t
    | ETryRecv : M.msg option Effect.t
    | ESelf : pid Effect.t
    | ETime : float Effect.t
    | EMark : string -> unit Effect.t

  (* A process blocked in a receive: plain [recv] resumes with the message,
     [recv_timeout] resumes with [Some msg] or, at the deadline, [None]. *)
  type blocked_k =
    | BRecv of (M.msg, unit) Effect.Deep.continuation
    | BRecvT of (M.msg option, unit) Effect.Deep.continuation

  type proc = {
    p_id : pid;
    p_name : string;
    mailbox : M.msg Queue.t;
    mutable max_queue : int;  (* peak mailbox depth, for telemetry *)
    mutable blocked : blocked_k option;
    mutable block_gen : int;  (* bumps on every block/wake, guards timeouts *)
    mutable idle_since : float;
    mutable finished : bool;
    mutable crashed : bool;
  }

  type t = {
    mutable now : float;
    events : (unit -> unit) Pqueue.t;
    procs : (pid, proc) Hashtbl.t;
    mutable next_pid : int;
    net : Ethernet.t;
    tr : Trace.t;
    mutable faults : Faults.t option;
    pre_crashed : (pid, unit) Hashtbl.t;  (* crashes firing before spawn *)
  }

  exception Deadlock of string

  let create ?(params = Ethernet.default_params) () =
    {
      now = 0.0;
      events = Pqueue.create ();
      procs = Hashtbl.create 16;
      next_pid = 0;
      net = Ethernet.create params;
      tr = Trace.create ();
      faults = None;
      pre_crashed = Hashtbl.create 4;
    }

  let now t = t.now

  let network t = t.net

  let trace t = t.tr

  let proc t pid =
    match Hashtbl.find_opt t.procs pid with
    | Some p -> p
    | None -> invalid_arg (Printf.sprintf "Sim: unknown pid %d" pid)

  let name_of t pid = (proc t pid).p_name

  let max_queue_depth t pid = (proc t pid).max_queue

  let process_count t = Hashtbl.length t.procs

  let crashed t pid =
    match Hashtbl.find_opt t.procs pid with
    | Some p -> p.crashed
    | None -> Hashtbl.mem t.pre_crashed pid

  let do_crash t pid =
    match Hashtbl.find_opt t.procs pid with
    | None -> Hashtbl.replace t.pre_crashed pid ()
    | Some p ->
        if not (p.crashed || p.finished) then begin
          p.crashed <- true;
          (* Drop any pending receive: a crashed machine never resumes. *)
          p.blocked <- None;
          p.block_gen <- p.block_gen + 1;
          Trace.add_mark t.tr ~pid ~time:t.now ~label:"CRASH"
        end

  let set_faults t spec =
    let f = Faults.make spec in
    t.faults <- Some f;
    List.iter
      (fun (machine, time) ->
        Pqueue.add t.events time (fun () -> do_crash t machine))
      (Faults.spec f).Faults.fs_crashes

  let fault_stats t = Option.map Faults.stats t.faults

  (* Deliver a message: wake the receiver if it is blocked, else enqueue.
     Crashed receivers silently lose the message. *)
  let deliver t ~src ~dst ~send_t ~label m =
    let p = proc t dst in
    if not p.crashed then begin
      Trace.add_arrow t.tr ~src ~dst ~send:send_t ~recv:t.now ~label;
      match p.blocked with
      | Some k ->
          p.blocked <- None;
          p.block_gen <- p.block_gen + 1;
          Trace.add_segment t.tr ~pid:p.p_id ~t0:p.idle_since ~t1:t.now
            Trace.Idle;
          (match k with
          | BRecv k -> Effect.Deep.continue k m
          | BRecvT k -> Effect.Deep.continue k (Some m))
      | None ->
          Queue.add m p.mailbox;
          if Queue.length p.mailbox > p.max_queue then
            p.max_queue <- Queue.length p.mailbox
    end

  let start_fiber t p body =
    let open Effect.Deep in
    (* Resumptions scheduled for later must be dropped if the process has
       crashed in the meantime. *)
    let resume k v = if not p.crashed then continue k v in
    match_with body ()
      {
        retc = (fun () -> p.finished <- true);
        exnc = (fun e -> raise e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | EDelay d ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    Trace.add_segment t.tr ~pid:p.p_id ~t0:t.now
                      ~t1:(t.now +. d) Trace.Active;
                    Pqueue.add t.events (t.now +. d) (fun () -> resume k ()))
            | ESend (dst, size, label, m) ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    let send_t = t.now in
                    let verdict =
                      match t.faults with
                      | None -> Faults.clean
                      | Some f -> Faults.judge f ~src:p.p_id ~dst
                    in
                    (* A dropped frame still occupies the medium; it just
                       never reaches the receiver. *)
                    let arrival =
                      Ethernet.transmit t.net ~now:t.now ~size
                        ~jitter:verdict.Faults.v_delay
                    in
                    if not verdict.Faults.v_drop then
                      Pqueue.add t.events arrival (fun () ->
                          deliver t ~src:p.p_id ~dst ~send_t ~label m);
                    if verdict.Faults.v_dup then begin
                      let arrival2 = Ethernet.transmit t.net ~now:t.now ~size in
                      Pqueue.add t.events arrival2 (fun () ->
                          deliver t ~src:p.p_id ~dst ~send_t ~label m)
                    end;
                    let cost = Ethernet.sender_cost t.net ~size in
                    Trace.add_segment t.tr ~pid:p.p_id ~t0:t.now
                      ~t1:(t.now +. cost) Trace.Active;
                    Pqueue.add t.events (t.now +. cost) (fun () ->
                        resume k ()))
            | ERecv ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    match Queue.take_opt p.mailbox with
                    | Some m -> continue k m
                    | None ->
                        p.blocked <- Some (BRecv k);
                        p.block_gen <- p.block_gen + 1;
                        p.idle_since <- t.now)
            | ERecvTimeout d ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    match Queue.take_opt p.mailbox with
                    | Some m -> continue k (Some m)
                    | None ->
                        p.blocked <- Some (BRecvT k);
                        p.block_gen <- p.block_gen + 1;
                        p.idle_since <- t.now;
                        let gen = p.block_gen in
                        Pqueue.add t.events (t.now +. d) (fun () ->
                            (* Still blocked in this same receive? *)
                            match p.blocked with
                            | Some (BRecvT k)
                              when p.block_gen = gen && not p.crashed ->
                                p.blocked <- None;
                                p.block_gen <- p.block_gen + 1;
                                Trace.add_segment t.tr ~pid:p.p_id
                                  ~t0:p.idle_since ~t1:t.now Trace.Idle;
                                continue k None
                            | _ -> ()))
            | ETryRecv ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    continue k (Queue.take_opt p.mailbox))
            | ESelf -> Some (fun (k : (a, unit) continuation) -> continue k p.p_id)
            | ETime -> Some (fun (k : (a, unit) continuation) -> continue k t.now)
            | EMark label ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    Trace.add_mark t.tr ~pid:p.p_id ~time:t.now ~label;
                    continue k ())
            | _ -> None);
      }

  let spawn t ~name body =
    let pid = t.next_pid in
    t.next_pid <- t.next_pid + 1;
    let p =
      {
        p_id = pid;
        p_name = name;
        mailbox = Queue.create ();
        max_queue = 0;
        blocked = None;
        block_gen = 0;
        idle_since = 0.0;
        finished = false;
        crashed = Hashtbl.mem t.pre_crashed pid;
      }
    in
    Hashtbl.add t.procs pid p;
    Pqueue.add t.events t.now (fun () ->
        if not p.crashed then start_fiber t p body);
    pid

  let run t =
    let rec loop () =
      match Pqueue.pop_min t.events with
      | None -> ()
      | Some (time, f) ->
          t.now <- max t.now time;
          f ();
          loop ()
    in
    loop ();
    let stuck =
      Hashtbl.fold
        (fun _ p acc ->
          if (not p.finished) && (not p.crashed) && p.blocked <> None then
            p.p_name :: acc
          else acc)
        t.procs []
    in
    if stuck <> [] then
      raise
        (Deadlock
           (Printf.sprintf "processes blocked in recv at end of simulation: %s"
              (String.concat ", " (List.sort compare stuck))))

  (* Effects *)

  let delay d = Effect.perform (EDelay d)

  let send ~dst ~size ?(label = "") m = Effect.perform (ESend (dst, size, label, m))

  let recv () = Effect.perform ERecv

  let recv_timeout d = Effect.perform (ERecvTimeout d)

  let try_recv () = Effect.perform ETryRecv

  let self () = Effect.perform ESelf

  let time () = Effect.perform ETime

  let mark label = Effect.perform (EMark label)
end
