open Pag_core
open Pag_analysis
open Pag_eval
open Pag_obs

type recovery = {
  rc_link : Reliable.t;
  rc_kplan : Kastens.plan option;
  rc_cost : Cost.t;
  rc_watchdog : float;
}

(* A peer the run cannot complete without stopped acknowledging. *)
exception Lost of int list

(* Probe [peers] and wait until every outstanding envelope — probes
   included — is either acknowledged or abandoned. Raises [Lost] if any
   machine we depend on is presumed dead. *)
let probe (r : recovery) peers =
  List.iter (fun dst -> Reliable.ping r.rc_link ~dst) peers;
  Reliable.drain r.rc_link;
  match List.filter (fun p -> List.mem p peers) (Reliable.dead_peers r.rc_link) with
  | [] -> ()
  | dead -> raise (Lost dead)

(* Receive with a liveness watchdog: when nothing arrives for
   [rc_watchdog] seconds, ping the machines this wait depends on and keep
   waiting only if they all still answer. *)
let recv_watched (env : Transport.env) recovery ~peers =
  match recovery with
  | None -> env.Transport.e_recv ()
  | Some r ->
      let rec wait () =
        match env.Transport.e_recv_timeout r.rc_watchdog with
        | Some m -> m
        | None ->
            probe r peers;
            wait ()
      in
      wait ()

(* The whole tree re-evaluated on the coordinator's own machine with the
   sequential evaluator — the fallback that lets compilation complete no
   matter which evaluator machines died. The CPU time is charged to the
   simulated clock through the same cost model the workers use. *)
let eval_locally ?obs (env : Transport.env) (r : recovery) g tree expected =
  let store, cost =
    match r.rc_kplan with
    | Some kplan ->
        let store, (st : Static_eval.stats) = Static_eval.eval ?obs kplan tree in
        (store, Cost.visit_cost r.rc_cost ~visits:st.Static_eval.visits ~evals:st.Static_eval.evals)
    | None ->
        let store, (st : Dynamic.stats) = Dynamic.eval ?obs g tree in
        ( store,
          (float_of_int st.Dynamic.instances *. r.rc_cost.Cost.build_node)
          +. (float_of_int st.Dynamic.edges *. r.rc_cost.Cost.build_edge)
          +. (float_of_int st.Dynamic.evals
             *. Cost.rule_cost r.rc_cost ~dynamic:true) )
  in
  env.Transport.e_delay cost;
  List.map (fun a -> (a, Store.get store tree a)) expected

let expected_attrs g (tree : Tree.t) =
  Array.to_list (Grammar.symbol g tree.Tree.sym).Grammar.s_attrs
  |> List.filter_map (fun (a : Grammar.attr_decl) ->
         if a.Grammar.a_kind = Grammar.Syn then Some a.Grammar.a_name else None)

let run ?(obs = Obs.null_ctx) ?recovery ?sharing (env : Transport.env) g ~tree
    ~plan ~librarian =
  let frags = Split.fragments plan in
  let evaluators =
    Array.to_list (Array.map (fun (f : Split.fragment) -> f.Split.fr_id + 1) frags)
  in
  (* Hand out subtrees; evaluator for fragment i is machine i+1. Each
     assignment is priced as the length of its real wire encoding
     ({!Split.encode}); with sharing classes known on both ends, repeated
     subtrees ship as backreferences — each class body crosses the wire
     once per machine, less wire and less rebuild. *)
  let frag_bytes (f : Split.fragment) =
    String.length (Split.encode ?sharing plan f)
  in
  Array.iter
    (fun (f : Split.fragment) ->
      env.Transport.e_send ~dst:(f.Split.fr_id + 1)
        (Message.Subtree
           {
             frag = f.Split.fr_id;
             bytes = frag_bytes f;
             uid_base = (f.Split.fr_id + 1) * Uid.stride;
           }))
    frags;
  env.Transport.e_mark "evaluation started";
  (* Collect the root's synthesized attributes from the root evaluator. *)
  let expected = expected_attrs g tree in
  let received = Hashtbl.create 8 in
  let protocol () =
    let rec collect () =
      if Hashtbl.length received < List.length expected then begin
        (match recv_watched env recovery ~peers:evaluators with
        | Message.Attr { node; attr; value } when node = tree.Tree.id ->
            Hashtbl.replace received attr value
        | other ->
            failwith
              (Format.asprintf "coordinator: unexpected message %a" Message.pp
                 other));
        collect ()
      end
    in
    Obs.with_span obs "collect-roots" collect;
    env.Transport.e_mark "root attributes received";
    (* Resolve any code descriptors through the librarian. *)
    let resolve attr value =
      match (librarian, value) with
      | Some lib, Value.Ext (Codestr.V c) when Codestr.frag_count c > 0 ->
          env.Transport.e_send ~dst:lib (Message.Resolve { value });
          let wait () =
            match recv_watched env recovery ~peers:[ lib ] with
            | Message.Final { text } -> Codestr.value (Codestr.of_rope text)
            | other ->
                failwith
                  (Format.asprintf "coordinator: expected Final for %s, got %a"
                     attr Message.pp other)
          in
          wait ()
      | _ -> value
    in
    let attrs =
      Obs.with_span obs "librarian-resolve" (fun () ->
          List.map (fun a -> (a, resolve a (Hashtbl.find received a))) expected)
    in
    (match librarian with
    | Some lib -> env.Transport.e_send ~dst:lib Message.Stop
    | None -> ());
    env.Transport.e_flush ();
    env.Transport.e_mark "result assembled";
    (attrs, false)
  in
  match protocol () with
  | result -> result
  | exception Lost dead ->
      let r = Option.get recovery in
      env.Transport.e_mark
        (Printf.sprintf "machine %s dead: recovering locally"
           (String.concat "," (List.map string_of_int dead)));
      if Obs.ctx_enabled obs then
        Obs.instant obs.Obs.x_rec ~pid:obs.Obs.x_pid ~t:(obs.Obs.x_clock ())
          (Printf.sprintf "recovery: machine %s dead"
             (String.concat "," (List.map string_of_int dead)));
      (* Call the survivors off, then redo the whole evaluation here. *)
      List.iter
        (fun dst -> env.Transport.e_send ~dst Message.Stop)
        (match librarian with Some l -> evaluators @ [ l ] | None -> evaluators);
      let attrs = eval_locally ~obs env r g tree expected in
      env.Transport.e_flush ();
      env.Transport.e_mark "result assembled";
      (attrs, true)
