(* Edge cases of the flat attribute store: zero-attribute symbols get zero
   slots, stub-stopped traversal for fragment stores, double-set detection
   (by name and by slot id), and the sparse-id offset path used by
   create_shared over tree fragments. *)

open Pag_core
open Pag_eval

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A grammar with a zero-attribute nonterminal in the middle: [sep] carries
   no attributes at all, so it must occupy no slots. *)
let gap_grammar =
  let open Grammar in
  make ~name:"gap" ~start:"r"
    [
      terminal "T" [ "v" ];
      nonterminal "r" [ syn "out" ];
      nonterminal "sep" [];
      nonterminal "x" [ syn "s" ];
    ]
    [
      production ~name:"root" ~lhs:"r" ~rhs:[ "sep"; "x" ]
        [ rule (lhs "out") ~deps:[ rhs 2 "s" ] (fun a -> a.(0)) ];
      production ~name:"gap" ~lhs:"sep" ~rhs:[ "T" ] [];
      production ~name:"leaf" ~lhs:"x" ~rhs:[ "T" ]
        [ rule (lhs "s") ~deps:[ rhs 1 "v" ] (fun a -> a.(0)) ];
    ]

let gap_tree () =
  let g = gap_grammar in
  Tree.node g "root"
    [
      Tree.node g "gap" [ Tree.leaf g "T" [ ("v", Value.Int 0) ] ];
      Tree.node g "leaf" [ Tree.leaf g "T" [ ("v", Value.Int 7) ] ];
    ]

let test_zero_attr_symbols () =
  let t = gap_tree () in
  let store = Store.create gap_grammar t in
  (* r.out + x.s — sep and the terminal leaves contribute no slots *)
  check_int "slot count" 2 (Store.slot_count store);
  check_int "missing before eval" 2 (Store.missing store);
  let store = Oracle.eval gap_grammar t in
  check_int "missing after eval" 0 (Store.missing store);
  check_int "root value" 7
    (Value.as_int ~ctx:"test" (Store.get store (Store.root store) "out"))

let test_zero_attr_dynamic () =
  let t = gap_tree () in
  let store, stats = Dynamic.eval gap_grammar t in
  check_int "instances" 2 stats.Dynamic.instances;
  check_int "evals" 2 stats.Dynamic.evals;
  check_int "missing" 0 (Store.missing store)

let test_reset_detected () =
  let t = gap_tree () in
  let store = Store.create gap_grammar t in
  let root = Store.root store in
  Store.set store root "out" (Value.Int 1);
  check_bool "set once" true (Store.is_set store root "out");
  (match Store.set store root "out" (Value.Int 2) with
  | () -> Alcotest.fail "second set must raise"
  | exception Store.Error _ -> ());
  (* same check through the slot-id interface *)
  let slot = Store.slot_of store root ~attr_idx:0 in
  check_bool "slot set" true (Store.slot_is_set store slot);
  match Store.define_slot store slot (Value.Int 3) with
  | () -> Alcotest.fail "define_slot on set slot must raise"
  | exception Store.Error _ -> ()

let test_equal_reset_is_idempotent () =
  (* Rules are pure: re-deriving an instance (a replayed network message)
     yields the same value, which must be accepted silently — and not
     counted as another set. *)
  let t = gap_tree () in
  let store = Store.create gap_grammar t in
  let root = Store.root store in
  Store.set store root "out" (Value.Int 1);
  let sets_before = Store.sets store in
  Store.set store root "out" (Value.Int 1);
  check_int "idempotent re-set not counted" sets_before (Store.sets store);
  check_int "value unchanged" 1
    (Value.as_int ~ctx:"test" (Store.get store root "out"));
  let slot = Store.slot_of store root ~attr_idx:0 in
  Store.define_slot store slot (Value.Int 1);
  check_int "slot re-set not counted" sets_before (Store.sets store);
  (* a *different* value is still the hard error *)
  match Store.define_slot store slot (Value.Int 2) with
  | () -> Alcotest.fail "conflicting re-set must raise"
  | exception Store.Error _ -> ()

let test_root_inh_preset () =
  let open Grammar in
  let g =
    make ~name:"inh" ~start:"x"
      [ terminal "T" []; nonterminal "x" [ inh "i"; syn "s" ] ]
      [
        production ~name:"leaf" ~lhs:"x" ~rhs:[ "T" ]
          [ rule (lhs "s") ~deps:[ lhs "i" ] (fun a -> a.(0)) ];
      ]
  in
  let t = Tree.node g "leaf" [ Tree.leaf g "T" [] ] in
  let store = Store.create ~root_inh:[ ("i", Value.Int 9) ] g t in
  check_bool "preset visible" true (Store.is_set store (Store.root store) "i");
  check_int "presets are not counted as sets" 0 (Store.sets store);
  check_int "only s missing" 1 (Store.missing store)

(* Fragment stores: number the whole tree once, then build a store over an
   inner subtree. Its node ids are global (do not start at 0), which
   exercises the offset-based id -> dense-index mapping. *)
let test_shared_fragment_ids () =
  let t = gap_tree () in
  ignore (Tree.number t);
  let sub = t.Tree.children.(1) in
  (* the "leaf" node *)
  check_bool "fragment root has a global id" true (sub.Tree.id > 0);
  let store = Store.create_shared gap_grammar sub in
  check_int "fragment slots" 1 (Store.slot_count store);
  check_bool "covers own root" true (Store.find_node store sub.Tree.id <> None);
  check_bool "does not cover siblings" true
    (Store.find_node store t.Tree.id = None);
  Store.set store sub "s" (Value.Int 3);
  check_int "fragment get" 3
    (Value.as_int ~ctx:"test" (Store.get store sub "s"))

let test_stub_stopped_populate () =
  let t = gap_tree () in
  ignore (Tree.number t);
  let stub = t.Tree.children.(1) in
  (* Stop below [stub]: the stub's own slots are allocated (its boundary
     attributes live here) but its children are not covered. *)
  let store =
    Store.create_shared ~stop:(fun n -> n == stub) gap_grammar t
  in
  check_int "slots include the stub's own" 2 (Store.slot_count store);
  check_bool "stub covered" true (Store.find_node store stub.Tree.id <> None);
  check_bool "stub child not covered" true
    (Store.find_node store stub.Tree.children.(0).Tree.id = None);
  (* stop at the root itself still descends: root is always covered fully *)
  let whole = Store.create_shared ~stop:(fun _ -> true) gap_grammar t in
  check_int "root stop still allocates root's children" 2
    (Store.node_count whole - 1)

let suite =
  [
    ( "store",
      [
        Alcotest.test_case "zero-attribute symbols get no slots" `Quick
          test_zero_attr_symbols;
        Alcotest.test_case "dynamic eval over zero-attribute symbols" `Quick
          test_zero_attr_dynamic;
        Alcotest.test_case "double set is an error (name and slot paths)"
          `Quick test_reset_detected;
        Alcotest.test_case "equal re-set is an idempotent no-op" `Quick
          test_equal_reset_is_idempotent;
        Alcotest.test_case "root_inh presets" `Quick test_root_inh_preset;
        Alcotest.test_case "fragment store over global ids" `Quick
          test_shared_fragment_ids;
        Alcotest.test_case "stub-stopped traversal" `Quick
          test_stub_stopped_populate;
      ] );
  ]
