(* The specification from the paper's appendix: values of arithmetic
   expressions with let-bound constants, in the reconstruction of the
   evaluator-generator syntax documented in Spec_ast. The worked example

     let x = 2 in 1 + 2 * x ni

   has value 5. *)

let source =
  {|
/* Attribute grammar of the appendix: expression values with constant
   declarations. Subtrees rooted at block may be split off and processed
   separately when their representation is at least 64 bytes long. */

%name IDENTIFIER ident string
%name NUMBER number value

%keyword LET "let"  EQ "="  IN "in"  NI "ni"  PLUS "+"  TIMES "*"
%keyword LPAREN "("  RPAREN ")"

%nosplit main_expr : syn value
%nosplit expr : syn value, inh priority stab
%split 64 block : syn value, inh priority stab

%start main_expr

%left PLUS
%left TIMES

%%

main_expr -> expr {
  $$.value = $1.value;
  $1.stab = st_create();
}

expr -> expr PLUS expr {
  $$.value = add($1.value, $3.value);
  $1.stab = $$.stab;
  $3.stab = $$.stab;
}

expr -> expr TIMES expr {
  $$.value = mul($1.value, $3.value);
  $1.stab = $$.stab;
  $3.stab = $$.stab;
}

expr -> IDENTIFIER {
  $$.value = st_lookup($$.stab, $1.string);
}

expr -> NUMBER {
  $$.value = $1.value;
}

expr -> LPAREN expr RPAREN {
  $$.value = $2.value;
  $2.stab = $$.stab;
}

expr -> block {
  $$.value = $1.value;
  $1.stab = $$.stab;
}

block -> LET IDENTIFIER EQ expr IN expr NI {
  $$.value = $6.value;
  $4.stab = $$.stab;
  $6.stab = st_add($$.stab, $2.string, $4.value);
}
|}

let spec = lazy (Spec_parser.parse source)

let translator = lazy (Compile.translator (Lazy.force spec))
