lib/analysis/localdep.ml: Array Digraph Grammar List Pag_core Pag_util Printf
