module SS = Set.Make (String)

type action = Shift of int | Reduce of int | Accept | Error

type item = int * int (* production index (augmented array), dot *)

module IS = Set.Make (struct
  type t = item

  let compare = compare
end)

type tables = {
  g : Cfg.t;
  aug : Cfg.production array; (* user prods @ [S' -> start] *)
  kernels : IS.t array;
  trans : (int * string, int) Hashtbl.t;
  actions : (int * string, action) Hashtbl.t;
  gotos : (int * string, int) Hashtbl.t;
  confl : string list;
}

let aug_index aug = Array.length aug - 1

(* ---------------- FIRST sets ---------------- *)

let compute_first g aug =
  let first : (string, SS.t) Hashtbl.t = Hashtbl.create 64 in
  let nullable : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let get s =
    if Cfg.is_terminal g s then SS.singleton s
    else Option.value ~default:SS.empty (Hashtbl.find_opt first s)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (p : Cfg.production) ->
        let cur = get p.Cfg.cp_lhs in
        let rec walk acc = function
          | [] ->
              if not (Hashtbl.mem nullable p.Cfg.cp_lhs) then begin
                Hashtbl.replace nullable p.Cfg.cp_lhs ();
                changed := true
              end;
              acc
          | s :: rest ->
              let acc = SS.union acc (get s) in
              if (not (Cfg.is_terminal g s)) && Hashtbl.mem nullable s then
                walk acc rest
              else acc
        in
        let acc = walk cur p.Cfg.cp_rhs in
        if not (SS.equal acc cur) then begin
          Hashtbl.replace first p.Cfg.cp_lhs acc;
          changed := true
        end)
      aug
  done;
  let first_of_seq syms la =
    (* FIRST of [syms · la] where [la] is a set of lookahead strings *)
    let rec walk acc = function
      | [] -> SS.union acc la
      | s :: rest ->
          let acc = SS.union acc (get s) in
          if (not (Cfg.is_terminal g s)) && Hashtbl.mem nullable s then
            walk acc rest
          else acc
    in
    walk SS.empty syms
  in
  first_of_seq

(* ---------------- LR(0) automaton ---------------- *)

let closure0 g aug kernel =
  let set = ref kernel in
  let changed = ref true in
  while !changed do
    changed := false;
    IS.iter
      (fun (p, d) ->
        let rhs = aug.(p).Cfg.cp_rhs in
        if d < List.length rhs then
          let x = List.nth rhs d in
          if not (Cfg.is_terminal g x) then
            List.iter
              (fun (i, _) ->
                if not (IS.mem (i, 0) !set) then begin
                  set := IS.add (i, 0) !set;
                  changed := true
                end)
              (Cfg.prods_for g x))
      !set
  done;
  !set

let build_lr0 g aug =
  let start_kernel = IS.singleton (aug_index aug, 0) in
  let kernels = ref [ start_kernel ] in
  let index = Hashtbl.create 64 in
  Hashtbl.add index (IS.elements start_kernel) 0;
  let trans = Hashtbl.create 256 in
  let queue = Queue.create () in
  Queue.add 0 queue;
  let kernel_of = Hashtbl.create 64 in
  Hashtbl.add kernel_of 0 start_kernel;
  while not (Queue.is_empty queue) do
    let i = Queue.take queue in
    let items = closure0 g aug (Hashtbl.find kernel_of i) in
    (* group shifts by symbol *)
    let by_sym = Hashtbl.create 16 in
    IS.iter
      (fun (p, d) ->
        let rhs = aug.(p).Cfg.cp_rhs in
        if d < List.length rhs then begin
          let x = List.nth rhs d in
          let cur = Option.value ~default:IS.empty (Hashtbl.find_opt by_sym x) in
          Hashtbl.replace by_sym x (IS.add (p, d + 1) cur)
        end)
      items;
    Hashtbl.iter
      (fun x kernel ->
        let key = IS.elements kernel in
        let j =
          match Hashtbl.find_opt index key with
          | Some j -> j
          | None ->
              let j = List.length !kernels in
              kernels := !kernels @ [ kernel ];
              Hashtbl.add index key j;
              Hashtbl.add kernel_of j kernel;
              Queue.add j queue;
              j
        in
        Hashtbl.replace trans (i, x) j)
      by_sym
  done;
  (Array.of_list !kernels, trans)

(* ---------------- LR(1) closure over lookahead sets ---------------- *)

let closure_la g aug first_of_seq seed =
  let la : (item, SS.t ref) Hashtbl.t = Hashtbl.create 64 in
  let get it =
    match Hashtbl.find_opt la it with
    | Some r -> r
    | None ->
        let r = ref SS.empty in
        Hashtbl.add la it r;
        r
  in
  let queue = Queue.create () in
  List.iter
    (fun (it, s) ->
      let r = get it in
      r := SS.union !r s;
      Queue.add it queue)
    seed;
  while not (Queue.is_empty queue) do
    let p, d = Queue.take queue in
    let rhs = aug.(p).Cfg.cp_rhs in
    if d < List.length rhs then begin
      let x = List.nth rhs d in
      if not (Cfg.is_terminal g x) then begin
        let suffix =
          List.filteri (fun i _ -> i > d) rhs
        in
        let las = first_of_seq suffix !(get (p, d)) in
        List.iter
          (fun (i, _) ->
            let r = get (i, 0) in
            if not (SS.subset las !r) then begin
              r := SS.union las !r;
              Queue.add (i, 0) queue
            end)
          (Cfg.prods_for g x)
      end
    end
  done;
  Hashtbl.fold (fun it r acc -> (it, !r) :: acc) la []

(* ---------------- LALR lookaheads ---------------- *)

let hash_marker = "#"

let compute_lookaheads g aug first_of_seq kernels trans =
  let la : (int * item, SS.t ref) Hashtbl.t = Hashtbl.create 256 in
  let get key =
    match Hashtbl.find_opt la key with
    | Some r -> r
    | None ->
        let r = ref SS.empty in
        Hashtbl.add la key r;
        r
  in
  let props : ((int * item) * (int * item)) list ref = ref [] in
  (get (0, (aug_index aug, 0))) := SS.singleton Cfg.eof;
  Array.iteri
    (fun i kernel ->
      IS.iter
        (fun k ->
          let closure =
            closure_la g aug first_of_seq [ (k, SS.singleton hash_marker) ]
          in
          List.iter
            (fun ((p, d), las) ->
              let rhs = aug.(p).Cfg.cp_rhs in
              if d < List.length rhs then begin
                let x = List.nth rhs d in
                match Hashtbl.find_opt trans (i, x) with
                | None -> ()
                | Some j ->
                    let tgt = (j, (p, d + 1)) in
                    SS.iter
                      (fun t ->
                        if t = hash_marker then props := ((i, k), tgt) :: !props
                        else
                          let r = get tgt in
                          r := SS.add t !r)
                      las
              end)
            closure)
        kernel)
    kernels;
  (* propagate *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (src, dst) ->
        let s = get src and d = get dst in
        if not (SS.subset !s !d) then begin
          d := SS.union !s !d;
          changed := true
        end)
      !props
  done;
  fun state item -> Option.fold ~none:SS.empty ~some:( ! ) (Hashtbl.find_opt la (state, item))

(* ---------------- tables ---------------- *)

let build g =
  let user = Cfg.productions g in
  let aug =
    Array.append user
      [|
        {
          Cfg.cp_name = "$accept";
          cp_lhs = "$start";
          cp_rhs = [ Cfg.start g ];
          cp_prec = None;
        };
      |]
  in
  (* prods_for must see the augmented production too; Cfg.prods_for only
     knows user productions, which is fine: nothing derives $start. *)
  let first_of_seq = compute_first g aug in
  let kernels, trans = build_lr0 g aug in
  let la = compute_lookaheads g aug first_of_seq kernels trans in
  let actions = Hashtbl.create 256 in
  let gotos = Hashtbl.create 256 in
  let confl = ref [] in
  let set_action state term act =
    match Hashtbl.find_opt actions (state, term) with
    | None -> Hashtbl.replace actions (state, term) act
    | Some existing when existing = act -> ()
    | Some existing -> (
        (* conflict resolution *)
        match (existing, act) with
        | Shift _, Reduce p | Reduce p, Shift _ -> (
            let shift_act =
              match (existing, act) with Shift _, _ -> existing | _ -> act
            in
            let term_prec = Cfg.prec_of_terminal g term in
            let prod_prec = Cfg.prec_of_production g aug.(p) in
            match (term_prec, prod_prec) with
            | Some (tp, _), Some (pp, _) when pp > tp ->
                Hashtbl.replace actions (state, term) (Reduce p)
            | Some (tp, _), Some (pp, _) when pp < tp ->
                Hashtbl.replace actions (state, term) shift_act
            | Some (_, Cfg.Left), Some _ ->
                Hashtbl.replace actions (state, term) (Reduce p)
            | Some (_, Cfg.Right), Some _ ->
                Hashtbl.replace actions (state, term) shift_act
            | Some (_, Cfg.Nonassoc), Some _ ->
                Hashtbl.replace actions (state, term) Error
            | _ ->
                confl :=
                  Printf.sprintf
                    "state %d: shift/reduce conflict on %S (kept shift)" state
                    term
                  :: !confl;
                Hashtbl.replace actions (state, term) shift_act)
        | Reduce a, Reduce b ->
            let keep = min a b in
            confl :=
              Printf.sprintf
                "state %d: reduce/reduce conflict on %S (kept rule %S)" state
                term aug.(keep).Cfg.cp_name
              :: !confl;
            Hashtbl.replace actions (state, term) (Reduce keep)
        | _ ->
            confl :=
              Printf.sprintf "state %d: conflict on %S" state term :: !confl)
  in
  Array.iteri
    (fun i kernel ->
      (* shifts and gotos *)
      Hashtbl.iter
        (fun (src, x) dst ->
          if src = i then
            if Cfg.is_terminal g x then set_action i x (Shift dst)
            else Hashtbl.replace gotos (i, x) dst)
        trans;
      (* reduces: LR(1) closure of the kernel with its LALR lookaheads *)
      let seed =
        IS.elements kernel |> List.map (fun it -> (it, la i it))
      in
      let closure = closure_la g aug first_of_seq seed in
      List.iter
        (fun ((p, d), las) ->
          if d = List.length aug.(p).Cfg.cp_rhs then
            SS.iter
              (fun t ->
                if p = aug_index aug then set_action i t Accept
                else set_action i t (Reduce p))
              las)
        closure)
    kernels;
  { g; aug; kernels; trans; actions; gotos; confl = List.rev !confl }

let state_count t = Array.length t.kernels

let action t state term =
  Option.value ~default:Error (Hashtbl.find_opt t.actions (state, term))

let goto t state nt = Hashtbl.find_opt t.gotos (state, nt)

let conflicts t = t.confl

let grammar t = t.g

let pp_state t fmt i =
  Format.fprintf fmt "@[<v>state %d:" i;
  IS.iter
    (fun (p, d) ->
      let pr = t.aug.(p) in
      let rhs = pr.Cfg.cp_rhs in
      Format.fprintf fmt "@,  %s ->" pr.Cfg.cp_lhs;
      List.iteri
        (fun j s ->
          if j = d then Format.fprintf fmt " .";
          Format.fprintf fmt " %s" s)
        rhs;
      if d = List.length rhs then Format.fprintf fmt " .")
    t.kernels.(i);
  Format.fprintf fmt "@]"
